"""Tests for the HB*-tree hierarchical placement and placers."""

import random

import pytest

from repro.bstar import (
    BStarPlacer,
    BStarPlacerConfig,
    HBStarTreePlacement,
    HierarchicalPlacer,
)
from repro.circuit import fig2_design, miller_opamp, simple_testcase


def quick_config(seed=0):
    return BStarPlacerConfig(seed=seed, alpha=0.85, steps_per_epoch=20, t_final=1e-3)


class TestHBPacking:
    def test_pack_contains_all_modules(self, fig2):
        hb = HBStarTreePlacement(fig2.hierarchy, fig2.modules())
        state = hb.initial_state(random.Random(0))
        p = hb.pack(state)
        assert {pm.name for pm in p} == set(fig2.modules().names())

    def test_pack_overlap_free(self, fig2):
        hb = HBStarTreePlacement(fig2.hierarchy, fig2.modules())
        for seed in range(10):
            state = hb.initial_state(random.Random(seed))
            p = hb.pack(state)
            assert p.is_overlap_free(), f"seed {seed}"

    def test_islands_and_arrays_by_construction(self, fig2):
        """Symmetry and common-centroid constraints hold for *every*
        state, not just annealed ones — that is the point of the
        formulation."""
        hb = HBStarTreePlacement(fig2.hierarchy, fig2.modules())
        constraints = fig2.constraints()
        for seed in range(10):
            state = hb.initial_state(random.Random(seed))
            p = hb.pack(state)
            for g in constraints.symmetry:
                assert g.symmetry_error(p) <= 1e-6
            for g in constraints.common_centroid:
                assert g.centroid_error(p) <= 1e-6

    def test_perturb_keeps_feasibility(self, fig2):
        hb = HBStarTreePlacement(fig2.hierarchy, fig2.modules())
        rng = random.Random(1)
        state = hb.initial_state(rng)
        constraints = fig2.constraints()
        for _ in range(25):
            state = hb.propose(state, rng)
            p = hb.pack(state)
            assert p.is_overlap_free()
            for g in constraints.symmetry:
                assert g.symmetry_error(p) <= 1e-6

    def test_perturb_does_not_mutate(self, fig2):
        hb = HBStarTreePlacement(fig2.hierarchy, fig2.modules())
        rng = random.Random(2)
        state = hb.initial_state(rng)
        p_before = hb.pack(state).positions()
        for _ in range(10):
            hb.propose(state, rng)
        assert hb.pack(state).positions() == p_before

    def test_level_items(self, fig2):
        hb = HBStarTreePlacement(fig2.hierarchy, fig2.modules())
        top_items = hb.level_items(fig2.hierarchy)
        assert "SYM" in top_items
        assert "PROX" in top_items
        assert "B" in top_items


class TestHierarchicalPlacer:
    def test_fig2_end_to_end(self, fig2):
        result = HierarchicalPlacer(fig2, quick_config()).run()
        p = result.placement
        assert p.is_overlap_free()
        assert fig2.constraints().violations(p) == []
        assert p.area_usage() < 2.5

    def test_miller_end_to_end(self, miller):
        result = HierarchicalPlacer(miller, quick_config()).run()
        p = result.placement
        assert p.is_overlap_free()
        for g in miller.constraints().symmetry:
            assert g.symmetry_error(p) <= 1e-6

    def test_deterministic(self, fig2):
        r1 = HierarchicalPlacer(fig2, quick_config(9)).run()
        r2 = HierarchicalPlacer(fig2, quick_config(9)).run()
        assert r1.placement.positions() == r2.placement.positions()

    def test_synthesized_circuit(self):
        c = simple_testcase(12, seed=4)
        result = HierarchicalPlacer(c, quick_config()).run()
        p = result.placement
        assert p.is_overlap_free()
        for g in c.constraints().symmetry:
            assert g.symmetry_error(p) <= 1e-6


class TestFlatBStarPlacer:
    def test_optimizes_small_set(self, small_modules):
        result = BStarPlacer(small_modules, config=quick_config()).run()
        assert result.placement.is_overlap_free()
        assert result.placement.area_usage() < 2.0

    def test_deterministic(self, small_modules):
        r1 = BStarPlacer(small_modules, config=quick_config(5)).run()
        r2 = BStarPlacer(small_modules, config=quick_config(5)).run()
        assert r1.placement.positions() == r2.placement.positions()
