"""Tests for the common-centroid placement generator (Fig. 3a)."""

import pytest

from repro.bstar import (
    CommonCentroidError,
    common_centroid_placement,
    grid_options,
    n_variants,
)
from repro.circuit import CommonCentroidGroup
from repro.geometry import Module, ModuleSet


def cc_problem(units_a=2, units_b=2, w=2.0, h=2.0):
    names_a = tuple(f"A{i}" for i in range(units_a))
    names_b = tuple(f"B{i}" for i in range(units_b))
    mods = ModuleSet.of(
        [Module.hard(n, w, h, rotatable=False) for n in names_a + names_b]
    )
    group = CommonCentroidGroup("cc", units=(("A", names_a), ("B", names_b)))
    return mods, group


class TestGridOptions:
    def test_four_units(self):
        _, group = cc_problem(2, 2)
        assert set(grid_options(group)) == {(1, 4), (2, 2)}
        assert n_variants(group) == 2

    def test_eight_units(self):
        _, group = cc_problem(4, 4)
        assert set(grid_options(group)) == {(1, 8), (2, 4)}


class TestPointSymmetricStyle:
    @pytest.mark.parametrize("units_a,units_b", [(2, 2), (4, 4), (2, 4), (4, 2)])
    def test_centroids_coincide(self, units_a, units_b):
        mods, group = cc_problem(units_a, units_b)
        for variant in range(n_variants(group)):
            p = common_centroid_placement(group, mods, variant=variant)
            assert p.is_overlap_free()
            assert group.centroid_error(p) == pytest.approx(0.0, abs=1e-9)

    def test_all_units_placed(self):
        mods, group = cc_problem(2, 2)
        p = common_centroid_placement(group, mods)
        assert len(p) == 4

    def test_odd_unit_count_rejected(self):
        mods = ModuleSet.of(
            [Module.hard(n, 2, 2) for n in ("A0", "A1", "A2", "B0")]
        )
        group = CommonCentroidGroup("cc", units=(("A", ("A0", "A1", "A2")), ("B", ("B0",))))
        with pytest.raises(CommonCentroidError):
            common_centroid_placement(group, mods)

    def test_mismatched_footprints_rejected(self):
        mods = ModuleSet.of(
            [
                Module.hard("A0", 2, 2),
                Module.hard("A1", 2, 2),
                Module.hard("B0", 3, 2),
                Module.hard("B1", 3, 2),
            ]
        )
        group = CommonCentroidGroup("cc", units=(("A", ("A0", "A1")), ("B", ("B0", "B1"))))
        with pytest.raises(CommonCentroidError):
            common_centroid_placement(group, mods)


class TestRowInterdigitatedStyle:
    def test_fig3a_pattern(self):
        """2 devices x 4 units on 2 x 4: the A B B A / B A A B pattern."""
        mods, group = cc_problem(4, 4)
        p = common_centroid_placement(group, mods, variant=1, style="row-interdigitated")
        assert p.is_overlap_free()
        assert group.centroid_error(p) == pytest.approx(0.0, abs=1e-9)
        # read the bottom row pattern left to right
        bottom = sorted(
            (pm for pm in p if pm.rect.y0 == 0.0), key=lambda pm: pm.rect.x0
        )
        pattern = "".join(pm.name[0] for pm in bottom)
        assert pattern == "ABBA"

    def test_single_row_palindrome(self):
        mods, group = cc_problem(4, 4)
        p = common_centroid_placement(group, mods, variant=0, style="row-interdigitated")
        assert group.centroid_error(p) == pytest.approx(0.0, abs=1e-9)

    def test_requires_two_devices(self):
        names = ("A0", "A1", "B0", "B1", "C0", "C1")
        mods = ModuleSet.of([Module.hard(n, 2, 2) for n in names])
        group = CommonCentroidGroup(
            "cc", units=(("A", names[:2]), ("B", names[2:4]), ("C", names[4:]))
        )
        with pytest.raises(CommonCentroidError):
            common_centroid_placement(group, mods, style="row-interdigitated")

    def test_unknown_style_rejected(self):
        mods, group = cc_problem()
        with pytest.raises(CommonCentroidError):
            common_centroid_placement(group, mods, style="diagonal")


class TestThreeDevices:
    def test_point_symmetric_three_devices(self):
        names_a, names_b, names_c = ("A0", "A1"), ("B0", "B1"), ("C0", "C1")
        mods = ModuleSet.of(
            [Module.hard(n, 2, 2) for n in names_a + names_b + names_c]
        )
        group = CommonCentroidGroup(
            "cc", units=(("A", names_a), ("B", names_b), ("C", names_c))
        )
        p = common_centroid_placement(group, mods)
        assert p.is_overlap_free()
        assert group.centroid_error(p) == pytest.approx(0.0, abs=1e-9)
