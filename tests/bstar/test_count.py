"""Tests for B*-tree counting (the section-IV search-space argument)."""

import pytest

from repro.bstar import catalan, count_bstar_trees, enumerate_bstar_trees
from tests.strategies import names


class TestCatalan:
    def test_known_values(self):
        assert [catalan(n) for n in range(7)] == [1, 1, 2, 5, 14, 42, 132]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            catalan(-1)


class TestClosedForm:
    def test_paper_number_for_8_modules(self):
        """Section IV: 'the number of possible placements for 8 modules
        is already 57,657,600'."""
        assert count_bstar_trees(8) == 57_657_600

    def test_small_values(self):
        assert count_bstar_trees(1) == 1
        assert count_bstar_trees(2) == 4
        assert count_bstar_trees(3) == 30


class TestEnumerationMatchesClosedForm:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
    def test_enumeration_count(self, n):
        trees = list(enumerate_bstar_trees(names(n)))
        expected = count_bstar_trees(n) if n else 1
        assert len(trees) == expected

    def test_enumerated_trees_are_valid_and_distinct(self):
        seen = set()
        for tree in enumerate_bstar_trees(names(3)):
            tree.validate()
            assert set(tree.nodes()) == set(names(3))
            key = (tree.root, tuple(sorted(tree.left.items())), tuple(sorted(tree.right.items())))
            assert key not in seen
            seen.add(key)

    def test_enumerated_placements_distinct_for_two(self):
        """The four trees over two labeled modules give the four
        relative arrangements."""
        from repro.bstar import pack
        from repro.geometry import Module, ModuleSet

        mods = ModuleSet.of([Module.hard("a", 2, 1), Module.hard("b", 1, 2)])
        arrangements = set()
        for tree in enumerate_bstar_trees(["a", "b"]):
            p = pack(tree, mods)
            arrangements.add((p["a"].rect.x0, p["a"].rect.y0, p["b"].rect.x0, p["b"].rect.y0))
        assert len(arrangements) == 4
