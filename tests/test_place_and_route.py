"""End-to-end place-and-route invariants on randomized circuits.

For any synthesized circuit, after placement by any engine and routing:

* routed wires never cross module interiors on the blocked layer;
* no two nets share a grid node;
* every routed net's wires touch all of its pins' terminals;
* reported wirelength equals the geometric length of the paths.
"""

import pytest

from repro.bstar import BStarPlacerConfig, HierarchicalPlacer
from repro.circuit import simple_testcase
from repro.route import Router
from repro.seqpair import PlacerConfig, SequencePairPlacer


def place(circuit, seed):
    return HierarchicalPlacer(
        circuit, BStarPlacerConfig(seed=seed, alpha=0.88, steps_per_epoch=25)
    ).run().placement


@pytest.mark.parametrize("n,seed", [(6, 0), (9, 1), (12, 2), (15, 3)])
class TestPlaceAndRouteInvariants:
    @pytest.fixture
    def routed(self, n, seed):
        circuit = simple_testcase(n, seed)
        placement = place(circuit, seed)
        router = Router(placement, circuit.nets, pitch=0.5)
        result = router.route_all(retries=10)
        return circuit, placement, router, result

    def test_wires_clear_of_blockages(self, routed):
        _, _, router, result = routed
        for net in result.routed.values():
            for pt in net.points():
                assert not router.grid._blocked[pt.layer][pt.col][pt.row], (
                    f"net {net.name} crosses a blocked node {pt}"
                )

    def test_no_node_sharing_between_nets(self, routed):
        _, _, _, result = routed
        seen: dict[tuple, str] = {}
        for net in result.routed.values():
            for pt in net.points():
                key = (pt.layer, pt.col, pt.row)
                owner = seen.setdefault(key, net.name)
                assert owner == net.name, f"{key} shared by {owner} and {net.name}"

    def test_routed_nets_touch_their_pins(self, routed):
        circuit, _, router, result = routed
        nets_by_name = {net.name: net for net in circuit.nets}
        for name, routed_net in result.routed.items():
            if not routed_net.paths:
                continue
            covered = {(p.col, p.row) for p in routed_net.points()}
            for module in nets_by_name[name].pins:
                pin = router.pin(module, name)
                assert (pin.col, pin.row) in covered, (
                    f"net {name} does not reach pin of {module}"
                )

    def test_wirelength_accounting(self, routed):
        _, _, router, result = routed
        for net in result.routed.values():
            geometric = sum(
                (abs(a.col - b.col) + abs(a.row - b.row)) * router.grid.pitch
                for path in net.paths
                for a, b in zip(path.points, path.points[1:])
                if a.layer == b.layer
            )
            assert net.wirelength == pytest.approx(geometric)

    def test_mostly_routable(self, routed):
        _, _, _, result = routed
        assert result.success_rate >= 0.8


class TestSequencePairPlaceAndRoute:
    def test_seqpair_placement_routes_too(self):
        circuit = simple_testcase(8, 5)
        placement = SequencePairPlacer.for_circuit(
            circuit, PlacerConfig(seed=5, alpha=0.88, steps_per_epoch=25)
        ).run().placement
        router = Router(placement, circuit.nets, pitch=0.5)
        result = router.route_all(retries=10)
        assert result.success_rate >= 0.8
