"""Failure injection: malformed inputs must fail loudly, never corrupt.

Production-quality EDA code fails at the boundary with a clear message —
silent mis-packing is how layout bugs become silicon bugs.
"""

import math
import random

import pytest

from repro.anneal import Annealer, FunctionMoveSet, GeometricSchedule
from repro.bstar import BStarTree, pack
from repro.circuit import Circuit, HierarchyNode, SymmetryGroup
from repro.geometry import Module, ModuleSet, Net, PlacedModule, Placement, Rect
from repro.seqpair import SequencePair, pack_lcs
from repro.shapes import DeterministicConfig, DeterministicPlacer
from repro.sizing import FoldedCascodeSizing, Sense, Spec, SpecSet


class TestGeometryBoundaries:
    def test_nan_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Module.hard("a", float("nan"), 2.0)

    def test_zero_size_module_rejected(self):
        with pytest.raises(ValueError):
            Module.hard("a", 0.0, 2.0)

    def test_placement_rect_footprint_mismatch(self):
        with pytest.raises(ValueError):
            PlacedModule(Module.hard("a", 2, 2), Rect(0, 0, 2, 3))


class TestSequencePairBoundaries:
    def test_pack_with_missing_module(self):
        sp = SequencePair(("a", "b"), ("a", "b"))
        mods = ModuleSet.of([Module.hard("a", 1, 1)])
        with pytest.raises(KeyError):
            pack_lcs(sp, mods)

    def test_sf_group_member_not_in_sequences(self):
        from repro.seqpair import is_symmetric_feasible

        sp = SequencePair(("a", "b"), ("a", "b"))
        g = SymmetryGroup("g", pairs=(("a", "ghost"),))
        with pytest.raises(KeyError):
            is_symmetric_feasible(sp, [g])


class TestBStarBoundaries:
    def test_pack_empty_tree(self):
        p = pack(BStarTree(), ModuleSet.of([Module.hard("a", 1, 1)]))
        assert len(p) == 0

    def test_insert_bad_side(self):
        t = BStarTree.chain(["a"])
        with pytest.raises(ValueError):
            t.insert("b", "a", "sideways")

    def test_move_under_itself(self):
        t = BStarTree.chain(["a", "b"])
        with pytest.raises(ValueError):
            t.move("a", "a", "left")


class TestCircuitBoundaries:
    def test_empty_hierarchy_placer_rejected(self):
        node = HierarchyNode("empty")
        circuit = Circuit("c", node)
        with pytest.raises(ValueError):
            DeterministicPlacer(circuit, DeterministicConfig()).run()

    def test_net_to_unknown_module(self):
        node = HierarchyNode("top", modules=[Module.hard("a", 1, 1)])
        with pytest.raises(ValueError):
            Circuit("c", node, nets=(Net("n", ("a", "ghost")),))


class TestAnnealerBoundaries:
    def test_survives_inf_costs(self):
        def cost(x):
            return float("inf") if x > 5 else float(x)

        annealer = Annealer(
            cost,
            FunctionMoveSet(lambda x, rng: x + rng.choice((-1, 1))),
            GeometricSchedule(t_final=0.01, steps_per_epoch=10),
            random.Random(0),
            auto_t0=False,
        )
        result = annealer.run(3)
        assert math.isfinite(result.best_cost)


class TestSizingBoundaries:
    def test_clamp_handles_extremes(self):
        s = FoldedCascodeSizing(
            w_in=1e12, l_in=1e-12, i_in=1e12, nf_in=0
        ).clamped()
        assert 10.0 <= s.w_in <= 600.0
        assert s.nf_in >= 1

    def test_spec_with_zero_bound(self):
        s = Spec("x", Sense.AT_LEAST, 0.0)
        assert s.margin(1.0) == 1.0  # scale falls back to 1

    def test_specset_missing_performance_key(self):
        specs = SpecSet((Spec("gain", Sense.AT_LEAST, 1.0),))
        with pytest.raises(KeyError):
            specs.violations({})
