"""Tests for basic-module-set enumeration."""

import pytest

from repro.bstar import count_bstar_trees
from repro.circuit import CommonCentroidGroup, SymmetryGroup
from repro.geometry import Module, ModuleSet
from repro.shapes import (
    enumerate_common_centroid,
    enumerate_plain,
    enumerate_symmetric,
)


class TestEnumeratePlain:
    def test_single_module(self):
        mods = ModuleSet.of([Module.hard("a", 2, 6)])
        sf = enumerate_plain(mods, ["a"])
        assert set(sf.staircase()) == {(2.0, 6.0), (6.0, 2.0)}

    def test_two_modules_contains_row_and_stack(self):
        mods = ModuleSet.of(
            [Module.hard("a", 2, 2, rotatable=False), Module.hard("b", 3, 3, rotatable=False)]
        )
        sf = enumerate_plain(mods, ["a", "b"])
        stair = set(sf.staircase())
        assert (5.0, 3.0) in stair  # row
        assert (3.0, 5.0) in stair  # stack

    def test_shapes_realizable_and_complete(self):
        mods = ModuleSet.of(
            [Module.hard(n, w, h, rotatable=False)
             for n, w, h in (("a", 2, 4), ("b", 3, 2), ("c", 1, 1))]
        )
        sf = enumerate_plain(mods, ["a", "b", "c"])
        for s in sf:
            p = s.placement()
            assert p.is_overlap_free()
            assert len(p) == 3

    def test_min_area_is_optimal_for_exhaustive(self):
        """The enumerated minimum equals a direct scan over all trees."""
        from repro.bstar import enumerate_bstar_trees, pack

        mods = ModuleSet.of(
            [Module.hard(n, w, h, rotatable=False)
             for n, w, h in (("a", 2, 5), ("b", 3, 2), ("c", 4, 1))]
        )
        sf = enumerate_plain(mods, ["a", "b", "c"], rotations=False)
        best = min(
            pack(t, mods).area for t in enumerate_bstar_trees(["a", "b", "c"])
        )
        assert sf.min_area_shape().area == pytest.approx(best)

    def test_sampling_path_for_large_sets(self):
        mods = ModuleSet.of([Module.hard(f"m{i}", 2 + i % 3, 3, rotatable=False) for i in range(7)])
        sf = enumerate_plain(mods, [m.name for m in mods], max_exhaustive=4, samples=50, seed=1)
        assert len(sf) >= 1
        for s in sf:
            assert s.placement().is_overlap_free()

    def test_empty_rejected(self):
        mods = ModuleSet.of([Module.hard("a", 1, 1)])
        with pytest.raises(ValueError):
            enumerate_plain(mods, [])


class TestEnumerateSymmetric:
    def test_all_islands_symmetric(self):
        mods = ModuleSet.of(
            [
                Module.hard("a", 3, 2, rotatable=False),
                Module.hard("b", 3, 2, rotatable=False),
                Module.hard("s", 4, 2, rotatable=False),
            ]
        )
        group = SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("s",))
        sf = enumerate_symmetric(mods, group)
        assert len(sf) >= 1
        for s in sf:
            island = s.placement()
            assert island.is_overlap_free()
            assert group.symmetry_error(island) <= 1e-9

    def test_spine_orders_explored(self):
        mods = ModuleSet.of(
            [
                Module.hard("s1", 6, 1, rotatable=False),
                Module.hard("s2", 2, 3, rotatable=False),
            ]
        )
        group = SymmetryGroup("g", self_symmetric=("s1", "s2"))
        sf = enumerate_symmetric(mods, group)
        # both stack orders give the same bounding box here; at least one shape
        assert sf.min_area_shape().height == pytest.approx(4.0)
        assert sf.min_area_shape().width == pytest.approx(6.0)

    def test_sampling_path(self):
        mods = ModuleSet.of(
            [Module.hard(f"p{i}{side}", 2, 2, rotatable=False)
             for i in range(3) for side in "ab"]
        )
        group = SymmetryGroup("g", pairs=tuple((f"p{i}a", f"p{i}b") for i in range(3)))
        sf = enumerate_symmetric(mods, group, max_exhaustive=2, samples=30, seed=0)
        for s in sf:
            assert group.symmetry_error(s.placement()) <= 1e-9


class TestEnumerateCommonCentroid:
    def test_variants_and_validity(self):
        names = ("A0", "A1", "B0", "B1")
        mods = ModuleSet.of([Module.hard(n, 2, 2, rotatable=False) for n in names])
        group = CommonCentroidGroup("cc", units=(("A", names[:2]), ("B", names[2:])))
        sf = enumerate_common_centroid(mods, group)
        assert len(sf) >= 1
        for s in sf:
            p = s.placement()
            assert p.is_overlap_free()
            assert group.centroid_error(p) <= 1e-9
