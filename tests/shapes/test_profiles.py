"""Tests for contact-offset computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Module, PlacedModule, Placement, Rect
from repro.shapes import horizontal_contact_offset, vertical_contact_offset


def block(name, x, y, w, h):
    return PlacedModule(Module.hard(name, w, h), Rect.from_size(x, y, w, h))


class TestHorizontalOffset:
    def test_flat_faces_touch(self):
        left = Placement.of([block("a", 0, 0, 2, 2)])
        right = Placement.of([block("b", 0, 0, 2, 2)])
        assert horizontal_contact_offset(left, right) == pytest.approx(2.0)

    def test_notch_nesting(self):
        # left: tall at x<2 plus low at 2..5 -> right block at y>=2 can enter
        left = Placement.of([block("t", 0, 0, 2, 6), block("l", 2, 0, 3, 2)])
        right = Placement.of([block("s", 0, 3, 2, 3)])
        offset = horizontal_contact_offset(left, right)
        assert offset == pytest.approx(2.0)  # clears the tall block only

    def test_disjoint_y_ranges_align_left(self):
        low = Placement.of([block("a", 0, 0, 3, 2)])
        high = Placement.of([block("b", 0, 5, 2, 2)])
        # no facing pair: operands share the left edge
        assert horizontal_contact_offset(low, high) == pytest.approx(0.0)

    def test_result_is_overlap_free(self):
        left = Placement.of([block("t", 0, 0, 2, 6), block("l", 2, 0, 3, 2)])
        right = Placement.of([block("s", 0, 3, 2, 3), block("u", 2, 0, 1, 2)])
        d = horizontal_contact_offset(left, right)
        merged = left.merged_with(right.translated(d, 0))
        assert merged.is_overlap_free()


class TestVerticalOffset:
    def test_flat_faces(self):
        bottom = Placement.of([block("a", 0, 0, 2, 2)])
        top = Placement.of([block("b", 0, 0, 2, 2)])
        assert vertical_contact_offset(bottom, top) == pytest.approx(2.0)

    def test_skyline_nesting(self):
        bottom = Placement.of([block("t", 0, 0, 2, 6), block("l", 2, 0, 3, 2)])
        top = Placement.of([block("s", 2.5, 0, 2, 2)])
        assert vertical_contact_offset(bottom, top) == pytest.approx(2.0)


coords = st.floats(0.0, 20.0)
dims = st.floats(0.5, 10.0)


@st.composite
def placements(draw, prefix, max_blocks=4):
    n = draw(st.integers(1, max_blocks))
    placed = []
    x = 0.0
    for i in range(n):
        w, h = draw(dims), draw(dims)
        y = draw(coords)
        placed.append(block(f"{prefix}{i}", x, y, w, h))
        x += w
    return Placement.of(placed)


class TestOffsetProperties:
    @given(placements("a"), placements("b"))
    @settings(max_examples=60, deadline=None)
    def test_horizontal_contact_is_tight_and_legal(self, left, right):
        d = horizontal_contact_offset(left, right)
        merged = left.merged_with(right.translated(d, 0))
        assert merged.is_overlap_free()
        # tightness: some facing pair is in exact contact (otherwise the
        # offset could be reduced), unless no modules face each other
        facing = [
            (a, b)
            for a in left
            for b in right
            if a.rect.y0 < b.rect.y1 and b.rect.y0 < a.rect.y1
        ]
        if facing:
            min_gap = min(b.rect.x0 + d - a.rect.x1 for a, b in facing)
            assert min_gap == pytest.approx(0.0, abs=1e-9)

    @given(placements("a"), placements("b"))
    @settings(max_examples=60, deadline=None)
    def test_vertical_contact_is_legal(self, bottom, top):
        d = vertical_contact_offset(bottom, top)
        merged = bottom.merged_with(top.translated(0, d))
        assert merged.is_overlap_free()
