"""Tests for the deterministic hierarchical placer (section IV flow)."""

import pytest

from repro.circuit import miller_opamp, simple_testcase, table1_circuit
from repro.shapes import DeterministicConfig, DeterministicPlacer


class TestDeterministicPlacer:
    @pytest.mark.parametrize("enhanced", [True, False])
    def test_miller_valid(self, miller, enhanced):
        result = DeterministicPlacer(
            miller, DeterministicConfig(enhanced=enhanced)
        ).run()
        p = result.placement
        assert p.is_overlap_free()
        assert len(p) == miller.n_modules
        assert miller.constraints().violations(p) == []
        assert result.area_usage == pytest.approx(p.area / miller.total_module_area())

    def test_deterministic_given_config(self, miller):
        r1 = DeterministicPlacer(miller, DeterministicConfig()).run()
        r2 = DeterministicPlacer(miller, DeterministicConfig()).run()
        assert r1.placement.positions() == r2.placement.positions()

    def test_esf_never_worse_than_rsf(self):
        for key in ("comparator_v2", "folded_cascode"):
            c = table1_circuit(key)
            esf = DeterministicPlacer(c, DeterministicConfig(enhanced=True)).run()
            rsf = DeterministicPlacer(c, DeterministicConfig(enhanced=False)).run()
            assert esf.area_usage <= rsf.area_usage + 1e-9, key

    def test_node_shape_functions_recorded(self, miller):
        result = DeterministicPlacer(miller, DeterministicConfig()).run()
        assert "OPAMP" in result.node_shape_functions
        assert "DP" in result.node_shape_functions

    def test_symmetry_islands_in_result(self, miller):
        result = DeterministicPlacer(miller, DeterministicConfig()).run()
        for group in miller.constraints().symmetry:
            assert group.symmetry_error(result.placement) <= 1e-6

    def test_synthesized_circuit(self):
        c = simple_testcase(10, seed=2)
        result = DeterministicPlacer(c, DeterministicConfig()).run()
        assert result.placement.is_overlap_free()
        assert c.constraints().violations(result.placement) == []

    def test_max_shapes_bounds_staircases(self, miller):
        result = DeterministicPlacer(
            miller, DeterministicConfig(max_shapes=4)
        ).run()
        for sf in result.node_shape_functions.values():
            assert len(sf) <= 8  # two fold orders merged then pruned

    def test_area_usage_above_one(self, miller):
        result = DeterministicPlacer(miller, DeterministicConfig()).run()
        assert result.area_usage >= 1.0
