"""Tests for shape functions and their additions (RSF vs ESF)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Module, PlacedModule, Placement, Rect
from repro.shapes import Shape, ShapeFunction, add_shape_functions


def leaf(name, w, h, rotatable=True):
    return ShapeFunction.from_module(Module.hard(name, w, h, rotatable=rotatable))


class TestShapeFunctionBasics:
    def test_from_module_with_rotation(self):
        sf = leaf("a", 2, 6)
        assert len(sf) == 2
        assert sf.staircase() == [(2.0, 6.0), (6.0, 2.0)]

    def test_from_module_no_rotation(self):
        sf = leaf("a", 2, 6, rotatable=False)
        assert sf.staircase() == [(2.0, 6.0)]

    def test_square_module_single_shape(self):
        assert len(leaf("a", 3, 3)) == 1

    def test_soft_module_variants(self):
        sf = ShapeFunction.from_module(
            Module.soft("a", 16.0, aspect_ratios=(0.25, 1.0, 4.0), rotatable=False)
        )
        assert len(sf) == 3

    def test_staircase_invariant_enforced(self):
        s1 = Shape.of_placement(
            Placement.of([PlacedModule(Module.hard("a", 2, 2), Rect(0, 0, 2, 2))])
        )
        s2 = Shape.of_placement(
            Placement.of([PlacedModule(Module.hard("b", 3, 3), Rect(0, 0, 3, 3))])
        )
        with pytest.raises(ValueError):
            ShapeFunction((s1, s2))  # s2 dominated, not a staircase
        assert len(ShapeFunction.of([s1, s2])) == 1

    def test_min_area_shape(self):
        sf = leaf("a", 2, 8)  # shapes (2,8) and (8,2), equal area
        assert sf.min_area_shape().area == 16.0

    def test_truncated_keeps_endpoints(self):
        mods = [Module.soft("a", 36.0, aspect_ratios=tuple(0.2 * k for k in range(1, 11)), rotatable=False)]
        sf = ShapeFunction.from_module(mods[0])
        t = sf.truncated(3)
        assert len(t) == 3
        assert t.shapes[0] == sf.shapes[0]
        assert t.shapes[-1] == sf.shapes[-1]

    def test_truncated_noop_when_small(self):
        sf = leaf("a", 2, 6)
        assert sf.truncated(10) is sf


class TestRegularAddition:
    def test_horizontal_bbox(self):
        f = leaf("a", 2, 3, rotatable=False)
        g = leaf("b", 4, 1, rotatable=False)
        out = add_shape_functions(f, g, enhanced=False, direction="h")
        assert out.staircase() == [(6.0, 3.0)]

    def test_vertical_bbox(self):
        f = leaf("a", 2, 3, rotatable=False)
        g = leaf("b", 4, 1, rotatable=False)
        out = add_shape_functions(f, g, enhanced=False, direction="v")
        assert out.staircase() == [(4.0, 4.0)]

    def test_both_directions_merge(self):
        f = leaf("a", 2, 3, rotatable=False)
        g = leaf("b", 4, 1, rotatable=False)
        out = add_shape_functions(f, g, enhanced=False, direction="both")
        assert set(out.staircase()) == {(6.0, 3.0), (4.0, 4.0)}

    def test_result_realizable(self):
        f = leaf("a", 2, 3)
        g = leaf("b", 4, 1)
        out = add_shape_functions(f, g, enhanced=False)
        for s in out:
            p = s.placement()
            assert p.is_overlap_free()
            assert len(p) == 2
            bb = p.bounding_box()
            assert bb.width == pytest.approx(s.width)
            assert bb.height == pytest.approx(s.height)


class TestEnhancedAddition:
    def test_interleave_beats_bbox(self):
        """The Fig. 7 situation: interlocking L-shaped operands overlap
        their bounding boxes, saving w_imp over the regular addition."""
        # left operand: tall block at x<2, low block at 2..5 -> notch top-right
        left_pl = Placement.of(
            [
                PlacedModule(Module.hard("t", 2, 6, rotatable=False), Rect.from_size(0, 0, 2, 6)),
                PlacedModule(Module.hard("l", 3, 2, rotatable=False), Rect.from_size(2, 0, 3, 2)),
            ]
        )
        left = ShapeFunction((Shape.of_placement(left_pl),))
        # right operand: high block on the left, low block indented right
        # -> its lower-left corner is hollow and fits over the notch
        right_pl = Placement.of(
            [
                PlacedModule(Module.hard("s", 2, 3, rotatable=False), Rect.from_size(0, 3, 2, 3)),
                PlacedModule(Module.hard("u", 1, 3, rotatable=False), Rect.from_size(2, 0, 1, 3)),
            ]
        )
        right = ShapeFunction((Shape.of_placement(right_pl),))

        rsf = add_shape_functions(left, right, enhanced=False, direction="h")
        esf = add_shape_functions(left, right, enhanced=True, direction="h")
        # regular: 5 + 3 = 8 wide; enhanced: the operands interlock
        assert rsf.min_area_shape().width == pytest.approx(8.0)
        assert esf.min_area_shape().width < 8.0
        assert esf.min_area_shape().placement().is_overlap_free()

    def test_esf_never_worse_than_rsf_pairwise(self):
        f = leaf("a", 2, 5)
        g = leaf("b", 3, 4)
        rsf = add_shape_functions(f, g, enhanced=False)
        esf = add_shape_functions(f, g, enhanced=True)
        # for every RSF shape there is an ESF shape dominating it
        for r in rsf:
            assert any(e.dominates(r) for e in esf)

    @given(
        st.floats(1.0, 9.0), st.floats(1.0, 9.0),
        st.floats(1.0, 9.0), st.floats(1.0, 9.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_esf_results_always_valid(self, w1, h1, w2, h2):
        f = leaf("a", w1, h1)
        g = leaf("b", w2, h2)
        out = add_shape_functions(f, g, enhanced=True)
        for s in out:
            p = s.placement()
            assert p.is_overlap_free()
            assert len(p) == 2

    def test_max_shapes_cap(self):
        f = leaf("a", 2, 6)
        g = leaf("b", 3, 5)
        out = add_shape_functions(f, g, enhanced=True, max_shapes=2)
        assert len(out) <= 2

    def test_bad_direction_rejected(self):
        f = leaf("a", 2, 2)
        with pytest.raises(ValueError):
            add_shape_functions(f, f, enhanced=False, direction="diagonal")
