"""Tests for shapes, dominance pruning and lazy realization."""

import pytest

from repro.geometry import Module, PlacedModule, Placement, Rect
from repro.shapes import Shape, pareto_prune


def shape(w, h, name="m"):
    p = Placement.of(
        [PlacedModule(Module.hard(name, w, h), Rect.from_size(0, 0, w, h))]
    )
    return Shape(w, h, concrete=p)


class TestShapeBasics:
    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            Shape(0.0, 1.0, concrete=Placement.empty())

    def test_needs_exactly_one_backing(self):
        with pytest.raises(ValueError):
            Shape(1.0, 1.0)

    def test_area(self):
        assert shape(2, 3).area == 6.0

    def test_dominates(self):
        assert shape(2, 3).dominates(shape(2, 3))
        assert shape(2, 3).dominates(shape(4, 3))
        assert shape(2, 3).dominates(shape(2, 5))
        assert not shape(2, 3).dominates(shape(1, 5))

    def test_of_placement_normalizes(self):
        p = Placement.of(
            [PlacedModule(Module.hard("m", 2, 2), Rect.from_size(5, 7, 2, 2))]
        )
        s = Shape.of_placement(p)
        assert s.width == 2.0
        assert s.placement().bounding_box().x0 == 0.0


class TestComposition:
    def test_composed_bbox_arithmetic(self):
        s = Shape.composed(shape(2, 3, "a"), shape(4, 1, "b"), dx=2.0, dy=0.0)
        assert s.width == 6.0
        assert s.height == 3.0

    def test_composed_negative_offset(self):
        s = Shape.composed(shape(2, 3, "a"), shape(2, 2, "b"), dx=-1.0, dy=0.0)
        assert s.width == pytest.approx(3.0)

    def test_realization_matches_bbox(self):
        s = Shape.composed(shape(2, 3, "a"), shape(4, 1, "b"), dx=2.0, dy=3.0)
        p = s.placement()
        bb = p.bounding_box()
        assert bb.width == pytest.approx(s.width)
        assert bb.height == pytest.approx(s.height)
        assert len(p) == 2

    def test_realization_cached(self):
        s = Shape.composed(shape(2, 3, "a"), shape(4, 1, "b"), dx=2.0, dy=0.0)
        assert s.placement() is s.placement()

    def test_nested_composition(self):
        inner = Shape.composed(shape(2, 2, "a"), shape(2, 2, "b"), dx=2.0, dy=0.0)
        outer = Shape.composed(inner, shape(4, 1, "c"), dx=0.0, dy=2.0)
        p = outer.placement()
        assert len(p) == 3
        assert p.is_overlap_free()


class TestParetoPrune:
    def test_removes_dominated(self):
        shapes = [shape(2, 3), shape(3, 3), shape(3, 2)]
        kept = pareto_prune(shapes)
        assert [(s.width, s.height) for s in kept] == [(2, 3), (3, 2)]

    def test_keeps_staircase_sorted(self):
        shapes = [shape(5, 1), shape(1, 5), shape(3, 3), shape(2, 4), shape(4, 2)]
        kept = pareto_prune(shapes)
        widths = [s.width for s in kept]
        heights = [s.height for s in kept]
        assert widths == sorted(widths)
        assert heights == sorted(heights, reverse=True)

    def test_equal_shapes_deduplicated(self):
        kept = pareto_prune([shape(2, 2), shape(2, 2)])
        assert len(kept) == 1

    def test_empty(self):
        assert pareto_prune([]) == []
