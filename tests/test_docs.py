"""The documentation layer must not rot.

Mirrors the CI docs-check (``tools/check_docs.py``) inside the tier-1
suite: every fenced python block in ``README.md`` executes, and no
relative link in ``README.md`` / ``docs/*.md`` points at a missing
file.  ``tests/test_readme_quickstart.py`` additionally pins the
quickstart's *behavior*; this file pins that the README text itself
stays runnable.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_docs  # noqa: E402


def test_readme_exists_and_links_docs():
    readme = REPO / "README.md"
    assert readme.exists(), "README.md is missing"
    text = readme.read_text()
    for doc in ("docs/architecture.md", "docs/parallel.md", "docs/benchmarks.md", "docs/perf.md"):
        assert doc in text, f"README.md does not link {doc}"
        assert (REPO / doc).exists(), f"{doc} is missing"


def test_no_dead_relative_links():
    files = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    assert check_docs.dead_links(files) == []


def test_readme_python_blocks_execute():
    assert check_docs.run_readme_blocks(REPO / "README.md") == []


def test_readme_quickstart_block_matches_pinned_test():
    """The first README block must exercise exactly the quickstart the
    dedicated test asserts (seqpair on miller_opamp, rendered)."""
    blocks = check_docs.python_blocks((REPO / "README.md").read_text())
    assert blocks, "README.md has no python blocks"
    first = blocks[0][1]
    for needle in (
        "miller_opamp()",
        "SequencePairPlacer.for_circuit",
        "PlacerConfig(seed=7)",
        "render_placement",
    ):
        assert needle in first, f"README quickstart lost {needle!r}"
