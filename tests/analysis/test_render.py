"""Tests for ASCII rendering."""

from repro.analysis import render_placement, render_shape_functions, staircase_table
from repro.circuit import fig1_modules, fig1_sequence_pair
from repro.geometry import Module, PlacedModule, Placement, Rect
from repro.seqpair import SequencePair, pack_symmetric
from repro.shapes import ShapeFunction


class TestRenderPlacement:
    def test_empty(self):
        assert "empty" in render_placement(Placement.empty())

    def test_modules_appear(self):
        p = Placement.of(
            [
                PlacedModule(Module.hard("alpha", 4, 4), Rect.from_size(0, 0, 4, 4)),
                PlacedModule(Module.hard("beta", 4, 4), Rect.from_size(4, 0, 4, 4)),
            ]
        )
        art = render_placement(p, width=40, height=10)
        assert "a" in art
        assert "b" in art
        assert "+" in art

    def test_fits_requested_box(self):
        mods, group = fig1_modules()
        sp = SequencePair(*fig1_sequence_pair())
        p = pack_symmetric(sp, mods, [group])
        art = render_placement(p, width=50, height=12)
        lines = art.split("\n")
        assert len(lines) <= 12
        assert all(len(line) <= 50 for line in lines)


class TestRenderShapeFunctions:
    def test_markers_and_legend(self):
        sf1 = ShapeFunction.from_module(Module.hard("a", 2, 8))
        sf2 = ShapeFunction.from_module(Module.hard("b", 3, 6))
        art = render_shape_functions({"ESF": sf1, "RSF": sf2})
        assert "E" in art
        assert "R" in art
        assert "ESF" in art  # legend

    def test_staircase_table(self):
        sf = ShapeFunction.from_module(Module.hard("a", 2, 8))
        table = staircase_table({"f": sf})
        assert "w=" in table
        assert "area=" in table
