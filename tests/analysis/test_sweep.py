"""Sweep harness: matrix schema, the differ's gate semantics, and the
byte-identical determinism of same-seed sweep runs."""

from __future__ import annotations

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import (
    DEFAULT_RTOL,
    PORTFOLIO,
    SCHEMA,
    SweepCellSpec,
    cell_key,
    declared_size,
    diff_matrices,
    format_matrix,
    load_matrix,
    matrix_bytes,
    matrix_summary,
    resolve_sweep_name,
    run_cell,
    run_sweep,
    tier_cells,
    tier_workloads,
    validate_matrix,
    write_matrix,
)

# -- synthetic matrices for differ tests --------------------------------------


def make_cell(
    workload: str = "gen:n=10,seed=1",
    engine: str = "bstar",
    ref_cost: float = 2.0,
    violations: int = 0,
    ok: bool = True,
    rtol: float = DEFAULT_RTOL,
) -> dict:
    cell = {
        "workload": workload,
        "engine": engine,
        "config": {"engines": [engine], "starts": 1, "budget": 100, "seed": 1},
        "config_hash": f"hash-{workload}-{engine}",
        "rtol": rtol,
        "ok": ok,
    }
    if ok:
        cell.update(
            ref_cost=ref_cost,
            cost_terms={"area": ref_cost},
            hpwl=10.0,
            violations=violations,
            steps=100,
        )
    else:
        cell["error"] = "RuntimeError: boom"
    return cell


def make_matrix(cells: list[dict], tier: str = "quick") -> dict:
    return {"schema": SCHEMA, "tier": tier, "cells": cells}


# hypothesis strategy: a small matrix of distinct cells with arbitrary
# (but valid) quality numbers
_cells = st.lists(
    st.tuples(
        st.sampled_from(["w1", "w2", "gen:n=5,seed=2"]),
        st.sampled_from(["bstar", "hbtree", "seqpair", "slicing", PORTFOLIO]),
        st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=8,
    unique_by=lambda t: (t[0], t[1]),
).map(
    lambda rows: make_matrix(
        [make_cell(w, e, cost, viol) for w, e, cost, viol in rows]
    )
)


class TestDiffer:
    @given(matrix=_cells)
    @settings(max_examples=50, deadline=None)
    def test_matrix_diffed_against_itself_always_passes(self, matrix):
        diff = diff_matrices(matrix, copy.deepcopy(matrix))
        assert diff.ok
        assert diff.regressions == []
        assert diff.improvements == []
        assert diff.added == []
        assert diff.unchanged == len(matrix["cells"])

    @given(matrix=_cells, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_single_worsened_cell_always_fails_and_is_named(self, matrix, data):
        fresh = copy.deepcopy(matrix)
        index = data.draw(
            st.integers(min_value=0, max_value=len(fresh["cells"]) - 1)
        )
        victim = fresh["cells"][index]
        victim["ref_cost"] = victim["ref_cost"] * (1.0 + victim["rtol"]) * 1.01
        diff = diff_matrices(matrix, fresh)
        assert not diff.ok
        assert len(diff.regressions) == 1
        # the offending (workload, engine) pair is named verbatim
        assert victim["workload"] in diff.regressions[0]
        assert victim["engine"] in diff.regressions[0]

    def test_tolerance_bound_is_inclusive_pass(self):
        """A fresh cost exactly on ``base * (1 + rtol)`` passes; any
        strictly greater value fails — as documented."""
        base = make_matrix([make_cell(ref_cost=100.0, rtol=0.05)])
        on_bound = make_matrix([make_cell(ref_cost=100.0 * 1.05, rtol=0.05)])
        assert diff_matrices(base, on_bound).ok
        above = make_matrix(
            [make_cell(ref_cost=100.0 * 1.05 + 1e-9, rtol=0.05)]
        )
        assert not diff_matrices(base, above).ok

    def test_rtol_comes_from_the_baseline_cell(self):
        """The gate honors the *committed* tolerance, so loosening the
        fresh cell's rtol cannot self-approve a regression."""
        base = make_matrix([make_cell(ref_cost=100.0, rtol=0.02)])
        fresh = make_matrix([make_cell(ref_cost=110.0, rtol=10.0)])
        assert not diff_matrices(base, fresh).ok

    def test_new_violation_fails_without_tolerance(self):
        base = make_matrix([make_cell(violations=1)])
        fresh = make_matrix([make_cell(violations=2)])
        diff = diff_matrices(base, fresh)
        assert not diff.ok
        assert "violations 1 -> 2" in diff.regressions[0]

    def test_formerly_converging_cell_failing_is_a_regression(self):
        base = make_matrix([make_cell()])
        fresh = make_matrix([make_cell(ok=False)])
        diff = diff_matrices(base, fresh)
        assert not diff.ok
        assert "previously converging" in diff.regressions[0]
        assert "boom" in diff.regressions[0]

    def test_never_converging_cell_cannot_regress(self):
        base = make_matrix([make_cell(ok=False)])
        fresh = make_matrix([make_cell(ok=False)])
        assert diff_matrices(base, fresh).ok

    def test_recovered_cell_is_an_improvement(self):
        base = make_matrix([make_cell(ok=False)])
        fresh = make_matrix([make_cell()])
        diff = diff_matrices(base, fresh)
        assert diff.ok
        assert "now converges" in diff.improvements[0]

    def test_missing_baseline_cell_fails(self):
        base = make_matrix([make_cell(engine="bstar"), make_cell(engine="hbtree")])
        fresh = make_matrix([make_cell(engine="bstar")])
        diff = diff_matrices(base, fresh)
        assert not diff.ok
        assert "missing" in diff.regressions[0]
        assert "hbtree" in diff.regressions[0]

    def test_added_cell_passes_and_is_reported(self):
        base = make_matrix([make_cell(engine="bstar")])
        fresh = make_matrix([make_cell(engine="bstar"), make_cell(engine="hbtree")])
        diff = diff_matrices(base, fresh)
        assert diff.ok
        assert diff.added == ["(gen:n=10,seed=1, hbtree)"]

    def test_improvement_passes_and_is_reported(self):
        base = make_matrix([make_cell(ref_cost=100.0)])
        fresh = make_matrix([make_cell(ref_cost=50.0)])
        diff = diff_matrices(base, fresh)
        assert diff.ok
        assert len(diff.improvements) == 1


class TestSchema:
    def test_committed_baseline_is_schema_valid_and_self_diffs_clean(self):
        from repro.analysis.sweep import DEFAULT_BASELINE_PATH

        baseline = load_matrix(DEFAULT_BASELINE_PATH)
        assert validate_matrix(baseline) == []
        assert baseline["tier"] == "quick"
        diff = diff_matrices(baseline, copy.deepcopy(baseline))
        assert diff.ok and diff.unchanged == len(baseline["cells"])
        # acceptance shape: >= 2 fixture + >= 2 gen workloads, all four
        # engines plus the portfolio per workload (plus the vector-tier
        # cell riding on its largest gen workload)
        from repro.analysis.sweep import VECTOR_ENGINE

        workloads = {c["workload"] for c in baseline["cells"]}
        assert sum(1 for w in workloads if w.startswith("file:")) >= 2
        assert sum(1 for w in workloads if w.startswith("gen:")) >= 2
        for workload in workloads:
            engines = {
                c["engine"] for c in baseline["cells"] if c["workload"] == workload
            }
            assert engines - {VECTOR_ENGINE} == {
                "bstar", "hbtree", "seqpair", "slicing", PORTFOLIO,
            }
        vector_cells = [
            c for c in baseline["cells"] if c["engine"] == VECTOR_ENGINE
        ]
        assert len(vector_cells) == 1
        assert vector_cells[0]["config"]["overrides"] == [["vector_tier", True]]

    def test_validate_rejects_wrong_schema_and_missing_fields(self):
        assert validate_matrix({"schema": "nope", "cells": []})
        matrix = make_matrix([make_cell()])
        del matrix["cells"][0]["ref_cost"]
        assert any("ref_cost" in p for p in validate_matrix(matrix))

    def test_validate_rejects_duplicate_cells(self):
        matrix = make_matrix([make_cell(), make_cell()])
        assert any("duplicate" in p for p in validate_matrix(matrix))

    def test_failed_cell_requires_error(self):
        matrix = make_matrix([make_cell(ok=False)])
        assert validate_matrix(matrix) == []
        del matrix["cells"][0]["error"]
        assert any("error" in p for p in validate_matrix(matrix))

    def test_write_and_load_round_trip(self, tmp_path):
        matrix = make_matrix([make_cell()])
        path = write_matrix(matrix, tmp_path / "m.json")
        assert load_matrix(path) == matrix

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError, match="not a valid quality matrix"):
            load_matrix(path)


class TestDeclaration:
    def test_quick_tier_covers_fixtures_and_gen_families(self):
        names = tier_workloads("quick")
        assert "file:benchmarks/fixtures/ami33s.aux" in names
        assert "file:benchmarks/fixtures/n100s.aux" in names
        assert sum(1 for n in names if n.startswith("gen:")) >= 2

    def test_full_tier_is_a_superset_with_scaling_sizes(self):
        quick, full = set(tier_workloads("quick")), set(tier_workloads("full"))
        assert quick < full
        assert any("n=1000" in n for n in full)

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="unknown sweep tier"):
            tier_workloads("nightly")

    def test_size_caps_drop_slow_engines_from_large_cells_visibly(self):
        cells = tier_cells("full")
        big = [c for c in cells if declared_size(c.workload) >= 1000]
        assert big, "full tier should declare 1000-module cells"
        for cell in big:
            assert "seqpair" not in cell.engines
        # the portfolio cell's recorded config lists only the engines
        # that actually ran — capability capping is never silent
        portfolio = [c for c in big if c.engine == PORTFOLIO]
        assert portfolio and all(
            "seqpair" not in c.config()["engines"] for c in portfolio
        )

    def test_narrowing_changes_config_hashes(self):
        default = {c.config_hash() for c in tier_cells("quick")}
        narrowed = {
            c.config_hash()
            for c in tier_cells("quick", budget=99, portfolio_budget=396)
        }
        assert default.isdisjoint(narrowed)

    def test_fixture_names_resolve_from_anywhere(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        resolved = resolve_sweep_name("file:benchmarks/fixtures/ami33s.aux")
        assert resolved.startswith("file:/")
        from repro.workloads import resolve_workload

        assert resolve_workload(resolved).n_modules == 12


#: a deliberately tiny grid: enough to exercise serial + portfolio paths
#: in well under a second per run
_MINI_CELLS = (
    SweepCellSpec("gen:n=8,seed=2", "bstar", ("bstar",), 1, 150, 17),
    SweepCellSpec("gen:n=8,seed=2", "hbtree", ("hbtree",), 1, 150, 17),
    SweepCellSpec(
        "gen:n=8,seed=2", PORTFOLIO, ("bstar", "hbtree"), 2, 300, 17
    ),
)


class TestRunDeterminism:
    def test_same_seed_sweeps_are_byte_identical(self):
        """Two sweep runs under one declaration produce byte-identical
        canonical matrices — the determinism oracle the workload
        subsystem's canonical_json established, applied to the sweep."""
        first = run_sweep("quick", cells=_MINI_CELLS)
        second = run_sweep("quick", cells=_MINI_CELLS)
        assert matrix_bytes(first) == matrix_bytes(second)
        # volatile fields exist in the full matrix but never in the bytes
        assert "elapsed_s" in first and b"elapsed_s" not in matrix_bytes(first)
        assert all("runtime_s" in c for c in first["cells"])
        assert b"runtime_s" not in matrix_bytes(first)

    def test_mini_sweep_is_schema_valid_and_self_gates(self):
        matrix = run_sweep("quick", cells=_MINI_CELLS)
        assert validate_matrix(matrix) == []
        assert all(c["ok"] for c in matrix["cells"])
        assert diff_matrices(matrix, matrix).ok
        # per-term breakdown carries the reference model's terms
        for cell in matrix["cells"]:
            assert set(cell["cost_terms"]) >= {"area", "wirelength", "aspect"}
        summary = matrix_summary(matrix)
        assert summary["cells"] == 3 and summary["ok_cells"] == 3
        assert "quality matrix" in format_matrix(matrix)

    def test_injected_regression_fails_the_gate_naming_the_cell(self):
        """The acceptance-criteria scenario: worsen one cell of a real
        matrix and the differ must fail naming (workload, engine)."""
        baseline = run_sweep("quick", cells=_MINI_CELLS)
        worsened = json.loads(json.dumps(baseline))
        victim = worsened["cells"][1]
        victim["ref_cost"] *= 2.0
        diff = diff_matrices(baseline, worsened)
        assert not diff.ok
        assert len(diff.regressions) == 1
        assert f"({victim['workload']}, {victim['engine']})" in diff.regressions[0]

    def test_failing_workload_is_recorded_not_raised(self):
        row = run_cell(
            SweepCellSpec("gen:n=0", "bstar", ("bstar",), 1, 150, 17)
        )
        assert row["ok"] is False
        assert "n >= 1" in row["error"]
        assert cell_key(row) == (
            "gen:n=0", "bstar", row["config_hash"],
        )
