"""Tests for the search-space combinatorics."""

import math

import pytest

from repro.analysis import (
    bstar_space,
    bstar_space_table,
    flat_enumeration_size,
    hierarchical_enumeration_size,
    log10_factorial,
    reduction_factor,
    sequence_pair_report,
)
from repro.circuit import SymmetryGroup, fig1_modules


class TestSequencePairReport:
    def test_paper_numbers(self):
        _, group = fig1_modules()
        report = sequence_pair_report(7, [group])
        assert report.total_codes == 25_401_600
        assert report.sf_codes == 35_280
        assert report.reduction == pytest.approx(0.9986, abs=1e-4)

    def test_describe_contains_numbers(self):
        _, group = fig1_modules()
        text = sequence_pair_report(7, [group]).describe()
        assert "35,280" in text
        assert "99.86" in text

    def test_no_groups_no_reduction(self):
        report = sequence_pair_report(4, [])
        assert report.reduction == 0.0


class TestBStarSpace:
    def test_paper_number(self):
        assert bstar_space(8) == 57_657_600

    def test_table_monotone(self):
        table = bstar_space_table(10)
        assert len(table) == 10
        counts = [c for _, c in table]
        assert counts == sorted(counts)


class TestHierarchicalBounding:
    def test_sum_vs_product(self):
        """Hierarchical bounding: enumerate 3 sets of 3 modules instead of
        one set of 9 — orders of magnitude fewer placements."""
        sizes = [3, 3, 3]
        hier = hierarchical_enumeration_size(sizes)
        flat = flat_enumeration_size(sizes)
        assert hier == 3 * 30
        assert flat == bstar_space(9)
        assert reduction_factor(sizes) > 1e6

    def test_single_set_no_reduction(self):
        assert reduction_factor([4]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reduction_factor([])


class TestLog10Factorial:
    def test_matches_exact_small(self):
        for n in (1, 5, 10, 20):
            assert log10_factorial(n) == pytest.approx(
                math.log10(math.factorial(n)), rel=1e-9
            )
