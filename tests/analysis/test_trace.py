"""The flight recorder's read side (repro.analysis.trace).

Round-trips real recorder output through the loader, pins the
validation problem-list contract, and locks the canonicalization rule
the byte-stability guarantee rests on: drop headers, drop ``wall``,
exclude wall-only events, sort by content.  The end-to-end identity
property (traced == untraced leaderboards) lives in
``tests/parallel/test_trace_identity.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.trace import (
    REPORT_SCHEMA,
    Trace,
    TraceStream,
    acceptance_curves,
    build_report,
    canonical_events,
    counter_totals,
    family_tables,
    load_trace,
    phase_breakdown,
    render_report,
    trace_bytes,
    validate_trace,
    worker_utilization,
)
from repro.parallel import PortfolioRunner
from repro.telemetry import TRACE_SCHEMA, TraceRecorder

CIRCUIT = "gen:n=12,seed=1"
FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))


def _traced_run(directory, **kwargs):
    return PortfolioRunner(
        CIRCUIT, ("bstar",), starts=2, overrides=FAST, trace=directory, **kwargs
    ).run()


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace")
    result = _traced_run(directory)
    return directory, result


class TestRoundTrip:
    def test_recorder_output_loads_and_validates(self, trace_dir):
        directory, _ = trace_dir
        trace = load_trace(directory)
        assert validate_trace(trace) == []
        # coordinator stream plus at least one worker stream
        names = [s.name for s in trace.streams]
        assert "coordinator" in names
        assert any(n.startswith("worker-") for n in names)

    def test_events_survive_with_fields_and_wall_intact(self, trace_dir):
        directory, result = trace_dir
        trace = load_trace(directory)
        final = trace.named("portfolio.result")
        assert len(final) == 1
        assert final[0]["fields"]["cost"] == result.cost
        assert final[0]["fields"]["walks"] == len(result.leaderboard)
        config = trace.named("portfolio.config")[0]
        assert config["fields"]["circuit"] == CIRCUIT
        for event in trace.events():
            assert {"t", "seq", "pid"} <= set(event["wall"])

    def test_loader_refuses_structural_damage(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            load_trace(tmp_path / "missing")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no trace streams"):
            load_trace(empty)
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "s.jsonl").write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace(bad)
        headerless = tmp_path / "headerless"
        headerless.mkdir()
        (headerless / "s.jsonl").write_text(
            json.dumps({"kind": "count", "name": "x", "fields": {}, "wall": {}})
            + "\n"
        )
        with pytest.raises(ValueError, match="header"):
            load_trace(headerless)

    def test_validate_flags_soft_shape_problems(self, tmp_path):
        with TraceRecorder(tmp_path, stream="s") as rec:
            rec.count("good")
        trace = load_trace(tmp_path)
        trace.streams[0].events.extend(
            [
                {"kind": "wat", "name": "x", "fields": {}, "wall": {}},
                {"kind": "count", "name": "x", "fields": {}, "wall": {"t": 0}},
                {"kind": "gauge", "name": "", "fields": "nope", "wall": {}},
            ]
        )
        problems = validate_trace(trace)
        assert any("unknown kind" in p for p in problems)
        assert any("no value" in p for p in problems)
        assert any("missing event name" in p for p in problems)
        assert any("wall is missing" in p for p in problems)


class TestCanonicalization:
    def test_canonical_view_drops_headers_wall_and_wall_only_events(
        self, tmp_path
    ):
        with TraceRecorder(tmp_path, stream="s") as rec:
            rec.count("kept", walk=1)
            rec.event("lifecycle", wall={"worker": "w0"})  # wall-only
        events = canonical_events(load_trace(tmp_path))
        assert events == [
            {"kind": "count", "name": "kept", "fields": {"walk": 1, "value": 1}}
        ]

    def test_same_seed_runs_have_identical_trace_bytes(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        _traced_run(a)
        _traced_run(b)
        blob_a, blob_b = trace_bytes(load_trace(a)), trace_bytes(load_trace(b))
        assert blob_a == blob_b
        assert blob_a  # non-trivial: deterministic events survived

    def test_worker_count_does_not_change_canonical_bytes(self, tmp_path):
        """Scheduling-dependent probes (executor/queue/lifecycle) are
        wall-only by construction, so the canonical view is identical
        across worker counts — only ``portfolio.config`` records the
        pool size, and its ``workers`` field is part of the config the
        caller chose, so it is normalized out here."""

        def scrub(trace):
            return [
                e
                for e in canonical_events(trace)
                if e["name"] != "portfolio.config"
            ]

        serial, pooled = tmp_path / "serial", tmp_path / "pooled"
        _traced_run(serial)
        _traced_run(pooled, workers=2)
        assert scrub(load_trace(serial)) == scrub(load_trace(pooled))


class TestReport:
    def test_report_shape_and_schema(self, trace_dir):
        directory, result = trace_dir
        trace = load_trace(directory)
        report = build_report(trace)
        assert report["schema"] == REPORT_SCHEMA
        assert report["result"]["cost"] == result.cost
        assert set(report["acceptance"]) == {
            str(o.spec.walk_id) for o in result.leaderboard
        }
        assert report["families"]  # per-engine move tables
        assert report["phases"]["portfolio.walks"]["count"] == 1
        json.dumps(report)  # must be pure JSON data

    def test_report_renders_for_humans(self, trace_dir):
        directory, _ = trace_dir
        text = render_report(build_report(load_trace(directory)))
        for needle in ("trace:", "time in phase", "move families", "walk"):
            assert needle in text

    def test_analysis_helpers_agree_with_the_raw_events(self, trace_dir):
        directory, result = trace_dir
        trace = load_trace(directory)
        curves = acceptance_curves(trace)
        assert set(curves) == {o.spec.walk_id for o in result.leaderboard}
        for points in curves.values():
            steps = [p["step"] for p in points]
            assert steps == sorted(steps)
        families = family_tables(trace)
        for table in families.values():
            for row in table.values():
                assert 0 <= row["accept_rate"] <= 1
                assert row["accepted"] <= row["proposed"]
        phases = phase_breakdown(trace)
        assert phases["portfolio.walks"]["ok"] is True
        totals = counter_totals(trace)
        assert all(isinstance(v, int) for v in totals.values())
        assert worker_utilization(trace) == {}  # serial run: no pool
