"""Tests for the thermal gradient model (section II motivation)."""

import pytest

from repro.analysis import ThermalModel, field_sample, render_field
from repro.circuit import SymmetryGroup
from repro.geometry import Module, PlacedModule, Placement, Point, Rect


def place(name, x, y, w=4.0, h=4.0):
    return PlacedModule(Module.hard(name, w, h), Rect.from_size(x, y, w, h))


@pytest.fixture
def symmetric_placement():
    """Radiator centered on the axis x = 10, sensitive pair mirrored."""
    return Placement.of(
        [place("hot", 8, 10), place("a", 0, 0), place("b", 16, 0)]
    )


@pytest.fixture
def asymmetric_placement():
    """Same modules, pair at different distances from the radiator."""
    return Placement.of(
        [place("hot", 8, 10), place("a", 4, 0), place("b", 16, 0)]
    )


@pytest.fixture
def model():
    return ThermalModel(power={"hot": 10.0})


class TestField:
    def test_peak_at_source(self, model, symmetric_placement):
        center = symmetric_placement["hot"].rect.center
        t_center = model.temperature_at(center, symmetric_placement)
        t_far = model.temperature_at(Point(100.0, 100.0), symmetric_placement)
        assert t_center > t_far > 0.0

    def test_radial_decay(self, model, symmetric_placement):
        center = symmetric_placement["hot"].rect.center
        temps = [
            model.temperature_at(Point(center.x + r, center.y), symmetric_placement)
            for r in (0.0, 5.0, 20.0, 80.0)
        ]
        assert temps == sorted(temps, reverse=True)

    def test_isothermal_circles(self, model, symmetric_placement):
        """Equal distance -> equal temperature (the paper's picture)."""
        c = symmetric_placement["hot"].rect.center
        t1 = model.temperature_at(Point(c.x + 7, c.y), symmetric_placement)
        t2 = model.temperature_at(Point(c.x, c.y + 7), symmetric_placement)
        assert t1 == pytest.approx(t2)

    def test_superposition(self, symmetric_placement):
        one = ThermalModel(power={"hot": 10.0})
        double = ThermalModel(power={"hot": 20.0})
        p = Point(0.0, 0.0)
        assert double.temperature_at(p, symmetric_placement) == pytest.approx(
            2 * one.temperature_at(p, symmetric_placement)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(power={"hot": -1.0})
        with pytest.raises(ValueError):
            ThermalModel(power={}, decay=0.0)


class TestMismatch:
    def test_symmetric_pair_has_no_mismatch(self, model, symmetric_placement):
        """Section II: symmetric placement relative to the radiator(s)
        sees identical temperatures."""
        group = SymmetryGroup("g", pairs=(("a", "b"),))
        assert model.pair_mismatch("a", "b", symmetric_placement) == pytest.approx(0.0)
        assert model.is_thermally_balanced(group, symmetric_placement, tol=1e-9)

    def test_asymmetric_pair_mismatches(self, model, asymmetric_placement):
        group = SymmetryGroup("g", pairs=(("a", "b"),))
        assert model.pair_mismatch("a", "b", asymmetric_placement) > 0.01
        assert not model.is_thermally_balanced(group, asymmetric_placement)

    def test_total_mismatch_sums_groups(self, model, asymmetric_placement):
        g = SymmetryGroup("g", pairs=(("a", "b"),))
        assert model.total_mismatch((g,), asymmetric_placement) == pytest.approx(
            model.pair_mismatch("a", "b", asymmetric_placement)
        )

    def test_radiators_sorted_by_power(self, symmetric_placement):
        model = ThermalModel(power={"hot": 10.0, "warm": 2.0, "cold": 0.0})
        assert model.radiators() == ["hot", "warm"]


class TestRendering:
    def test_field_sample_shape(self, model, symmetric_placement):
        rows = field_sample(model, symmetric_placement, nx=10, ny=5)
        assert len(rows) == 5
        assert all(len(r) == 10 for r in rows)

    def test_render_is_hot_near_source(self, model, symmetric_placement):
        art = render_field(model, symmetric_placement, width=30, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert "@" in art  # hottest glyph appears somewhere
