"""The vector tier is an equal-answers fast path, bit for bit.

These tests lock the array-native evaluation tier's contract the same
way ``test_incremental_equivalence.py`` locked PR-2's: over random
module sets (hard, square and soft), random nets (two-pin, multi-pin,
weighted, dangling) and random batched walks with accepts and
rejections, the numpy :class:`~repro.perf.BatchCostEvaluator` and the
:class:`~repro.perf.VectorBStarEngine` agree exactly (``==``, no
tolerances) with the scalar :class:`~repro.cost.CostModel` and with
the engine's own scalar-oracle twin.  The driver side gets the same
treatment: chunked :class:`~repro.anneal.BatchedAnnealer` advances
replay one monolithic run bit for bit, and ``batch_max=1`` collapses
to the plain :class:`~repro.anneal.IncrementalAnnealer` loop.

What is deliberately *not* tested here: vector-vs-incremental best
costs.  The vector engine draws a different move family (windowed
suffix moves), so its trajectories are compared only against its own
scalar oracle; quality versus the incremental tier is tracked by the
``bstar-vector`` cell of the quality-sweep matrix.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.anneal import BatchedAnnealer, GeometricSchedule, IncrementalAnnealer
from repro.bstar import BStarPlacerConfig
from repro.circuit import ProximityGroup, simple_testcase
from repro.cost import (
    AreaTerm,
    AspectTerm,
    CostModel,
    HPWLTerm,
    OutlineTerm,
    area_scale_of,
    model_for_config,
    reference_model,
)
from repro.geometry import Module, ModuleSet, Net
from repro.perf import (
    BatchCostEvaluator,
    BStarKernel,
    IncrementalBStarEngine,
    VectorBStarEngine,
    bounding_of,
)

from tests.strategies import mixed_module_sets


def _random_nets(names, rng, *, multi=True):
    """A mixed net list: two-pin, multi-pin weighted, and one dangling."""
    if len(names) < 2:
        return ()
    nets = [Net(f"n{i}", tuple(rng.sample(names, 2))) for i in range(min(5, len(names)))]
    if multi and len(names) >= 3:
        nets += [
            Net(f"t{i}", tuple(rng.sample(names, 3)), weight=1.5) for i in range(2)
        ]
    nets.append(Net("ghost", (names[0], "nowhere")))
    return tuple(nets)


def _random_packings(mods, nets, config, seed, k=4):
    """``k`` committed coordinate tables off a short random walk."""
    rng = random.Random(seed)
    engine = IncrementalBStarEngine(mods, nets, (), config)
    kernel = BStarKernel(mods, nets, (), config)
    engine.reset(engine.initial_state(rng))
    tables = []
    for _ in range(k):
        for _ in range(5):
            engine.propose(rng)
            if rng.random() < 0.6:
                engine.commit()
            else:
                engine.rollback()
        state = engine.snapshot()
        tables.append(kernel.pack(state.tree, state.orientations, state.variants))
    return tables


def _center_arrays(tables, names):
    """(K, n) module-center arrays in ``names`` order, plus boundings."""
    k = len(tables)
    cx = np.zeros((k, len(names)), dtype=np.float64)
    cy = np.zeros((k, len(names)), dtype=np.float64)
    boundings = []
    for j, coords in enumerate(tables):
        for i, name in enumerate(names):
            x0, y0, x1, y1 = coords[name]
            cx[j, i] = (x0 + x1) / 2.0
            cy[j, i] = (y0 + y1) / 2.0
        boundings.append(bounding_of(coords.values()))
    return cx, cy, boundings


class TestBatchCostEvaluator:
    @settings(max_examples=40, deadline=None)
    @given(mixed_module_sets(min_size=1, max_size=14), st.integers(0, 2**31))
    def test_totals_match_scalar_evaluate(self, mods, seed):
        """Batched totals == per-candidate ``CostModel.evaluate``, exactly."""
        rng = random.Random(seed)
        names = mods.names()
        nets = _random_nets(names, rng)
        config = BStarPlacerConfig(wirelength_weight=0.7, aspect_weight=0.2)
        model = model_for_config(mods, nets, (), config)
        tables = _random_packings(mods, nets, config, seed ^ 0xC0FFEE)
        cx, cy, boundings = _center_arrays(tables, names)

        evaluator = BatchCostEvaluator(model, names)
        totals = evaluator.totals(cx, cy, boundings)
        for j, coords in enumerate(tables):
            assert totals[j] == model.evaluate(coords), f"candidate {j}"

    @settings(max_examples=25, deadline=None)
    @given(mixed_module_sets(min_size=1, max_size=10), st.integers(0, 2**31))
    def test_single_candidate_fast_path(self, mods, seed):
        """K=1 takes the 1-D fast path; it must score like the 2-D one."""
        rng = random.Random(seed)
        names = mods.names()
        nets = _random_nets(names, rng)
        config = BStarPlacerConfig(wirelength_weight=0.5)
        model = model_for_config(mods, nets, (), config)
        tables = _random_packings(mods, nets, config, seed, k=1)
        cx, cy, boundings = _center_arrays(tables, names)
        evaluator = BatchCostEvaluator(model, names)
        assert evaluator.totals(cx, cy, boundings) == [model.evaluate(tables[0])]

    def test_empty_nets_single_module(self):
        """No nets and one module: the degenerate shapes still agree."""
        mods = ModuleSet.of([Module.hard("a", 3.0, 2.0)])
        config = BStarPlacerConfig()
        model = model_for_config(mods, (), (), config)
        coords = {"a": (0.0, 0.0, 3.0, 2.0)}
        cx, cy, boundings = _center_arrays([coords], mods.names())
        evaluator = BatchCostEvaluator(model, mods.names())
        assert evaluator.totals(cx, cy, boundings) == [model.evaluate(coords)]

    @settings(max_examples=25, deadline=None)
    @given(mixed_module_sets(min_size=2, max_size=10), st.integers(0, 2**31))
    def test_outline_model_matches(self, mods, seed):
        """A hand-built fixed-outline model batches exactly too."""
        rng = random.Random(seed)
        names = mods.names()
        nets = _random_nets(names, rng, multi=False)
        scale = area_scale_of(mods)
        # a deliberately tight outline so some packings spill over
        model = CostModel(
            [
                AreaTerm(1.0, scale),
                HPWLTerm(0.6, nets, names, scale),
                AspectTerm(0.2),
                OutlineTerm(0.5, (scale**0.5, scale**0.5 * 0.8)),
            ]
        )
        config = BStarPlacerConfig(wirelength_weight=0.6)
        tables = _random_packings(mods, nets, config, seed)
        cx, cy, boundings = _center_arrays(tables, names)
        evaluator = BatchCostEvaluator(model, names)
        totals = evaluator.totals(cx, cy, boundings)
        for j, coords in enumerate(tables):
            assert totals[j] == model.evaluate(coords)

    def test_boundary_tier_model_rejected(self):
        """The violations term needs a rich Placement — no array form."""
        circuit = simple_testcase(8)
        model = reference_model(circuit)
        names = circuit.modules().names()
        assert BatchCostEvaluator.unsupported_reason(model) is not None
        with pytest.raises(ValueError, match="violations"):
            BatchCostEvaluator(model, names)


def _walk_batched(vec, oracle, steps, seed, kernel, model, check_every=7):
    """Drive both engines through identical batched walks with random
    accept/reject decisions, asserting bit-equality throughout."""
    r1, r2 = random.Random(seed), random.Random(seed)
    chooser = random.Random(seed + 1)
    for step in range(steps):
        width = chooser.randint(1, 5)
        c1 = vec.propose_batch(r1, width)
        c2 = oracle.propose_batch(r2, width)
        assert c1 == c2, f"step {step}: {c1} != {c2}"
        if chooser.random() < 0.5:
            j = chooser.randrange(width)
            vec.accept(j)
            oracle.accept(j)
        else:
            vec.reject_all()
            oracle.reject_all()
        assert vec._cost == oracle._cost
        if step % check_every == 0:
            # the committed state must pack and score identically
            # through the full PR-1 kernel + scalar model
            state = vec.snapshot()
            packed = kernel.pack(state.tree, state.orientations, state.variants)
            assert vec._coords == packed
            assert vec._cost == model.evaluate(packed)


class TestVectorBStarEngine:
    @settings(max_examples=30, deadline=None)
    @given(mixed_module_sets(min_size=2, max_size=14), st.integers(0, 2**31))
    def test_matches_scalar_oracle_over_batched_walks(self, mods, seed):
        rng = random.Random(seed)
        names = mods.names()
        nets = _random_nets(names, rng)
        config = BStarPlacerConfig(
            wirelength_weight=0.7, aspect_weight=0.2, vector_window_min=4
        )
        vec = VectorBStarEngine(mods, nets, (), config)
        oracle = VectorBStarEngine(mods, nets, (), config, evaluator="scalar")
        kernel = BStarKernel(mods, nets, (), config)
        model = model_for_config(mods, nets, (), config)
        init = vec.initial_state(rng)
        assert vec.reset(init) == oracle.reset(init)
        _walk_batched(vec, oracle, 40, seed ^ 0x5A5A, kernel, model)
        vec._tree.validate()

    @settings(max_examples=20, deadline=None)
    @given(mixed_module_sets(min_size=2, max_size=10), st.integers(0, 2**31))
    def test_scalar_protocol_matches_batch_of_one(self, mods, seed):
        """propose/commit/rollback is exactly propose_batch(k=1)."""
        rng = random.Random(seed)
        nets = _random_nets(mods.names(), rng, multi=False)
        config = BStarPlacerConfig(wirelength_weight=0.5)
        one = VectorBStarEngine(mods, nets, (), config)
        batch = VectorBStarEngine(mods, nets, (), config)
        init = one.initial_state(rng)
        assert one.reset(init) == batch.reset(init)
        r1, r2 = random.Random(seed), random.Random(seed)
        chooser = random.Random(seed + 1)
        for step in range(30):
            c1 = one.propose(r1)
            c2 = batch.propose_batch(r2, 1)[0]
            assert c1 == c2, f"step {step}"
            if chooser.random() < 0.5:
                one.commit()
                batch.accept(0)
            else:
                one.rollback()
                batch.reject_all()
            assert one._cost == batch._cost
        assert one._coords == batch._coords

    def test_proximity_groups_rejected_in_vector_mode(self):
        """Proximity geometry has no array form: the vector evaluator
        refuses it loudly, while the scalar oracle still serves it."""
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", 2.0 + i, 3.0) for i in range(4)]
        )
        group = ProximityGroup("g", ("m0", "m1"))
        config = BStarPlacerConfig()
        with pytest.raises(ValueError, match="proximity"):
            VectorBStarEngine(mods, (), (group,), config)
        oracle = VectorBStarEngine(mods, (), (group,), config, evaluator="scalar")
        rng = random.Random(3)
        oracle.reset(oracle.initial_state(rng))
        oracle.propose_batch(rng, 2)
        oracle.reject_all()

    def test_unknown_evaluator_rejected(self):
        mods = ModuleSet.of([Module.hard("a", 2.0, 2.0)])
        with pytest.raises(ValueError, match="evaluator"):
            VectorBStarEngine(mods, (), (), BStarPlacerConfig(), evaluator="cuda")


def _fresh(mods, nets, config, *, batch_max=None):
    """A (engine, annealer) pair wired the way the placers wire them."""
    rng = random.Random(config.seed)
    engine = VectorBStarEngine(mods, nets, (), config)
    engine.reset(engine.initial_state(rng))
    schedule = GeometricSchedule(
        t_initial=config.t_initial,
        t_final=config.t_final,
        alpha=config.alpha,
        steps_per_epoch=config.steps_per_epoch,
    )
    if batch_max is None:
        annealer = IncrementalAnnealer(engine, schedule, rng)
    else:
        annealer = BatchedAnnealer(engine, schedule, rng, batch_max=batch_max)
    return engine, annealer


class TestBatchedAnnealer:
    def _problem(self, n=24, seed=9):
        rng = random.Random(seed)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(n)]
        )
        names = mods.names()
        nets = tuple(
            Net(f"n{i}", tuple(rng.sample(names, 2))) for i in range(n)
        )
        return mods, nets

    def test_chunked_advance_matches_monolithic(self):
        """Tiled advances across chunk boundaries replay one run exactly."""
        mods, nets = self._problem()
        config = BStarPlacerConfig(seed=2, alpha=0.85, t_final=1e-2)
        _, mono = _fresh(mods, nets, config, batch_max=8)
        cp_mono = mono.advance(mono.begin(), None, _engine_synced=True)

        _, chunked = _fresh(mods, nets, config, batch_max=8)
        cp = chunked.begin()
        while cp.step < cp.total_steps:
            cp = chunked.advance(cp, 37, _engine_synced=True)
        assert cp.step == cp_mono.step
        assert cp.best_cost == cp_mono.best_cost
        assert cp.current_cost == cp_mono.current_cost
        assert cp.rng_state == cp_mono.rng_state
        assert cp.stats.accepted == cp_mono.stats.accepted

    def test_batch_max_one_matches_incremental_annealer(self):
        """K=1 batching is the scalar loop: same draws, same answers."""
        mods, nets = self._problem()
        config = BStarPlacerConfig(seed=4, alpha=0.85, t_final=1e-2)
        _, scalar = _fresh(mods, nets, config, batch_max=None)
        cp_scalar = scalar.advance(scalar.begin(), None, _engine_synced=True)
        _, batched = _fresh(mods, nets, config, batch_max=1)
        cp_batched = batched.advance(batched.begin(), None, _engine_synced=True)
        assert cp_batched.best_cost == cp_scalar.best_cost
        assert cp_batched.current_cost == cp_scalar.current_cost
        assert cp_batched.step == cp_scalar.step

    def test_batch_max_validated(self):
        mods, nets = self._problem(n=4)
        config = BStarPlacerConfig()
        engine = VectorBStarEngine(mods, nets, (), config)
        with pytest.raises(ValueError, match="batch_max"):
            BatchedAnnealer(engine, rng=random.Random(0), batch_max=0)
