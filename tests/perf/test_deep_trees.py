"""Deep degenerate trees: the iterative traversals must not recurse.

Before the perf kernel, ``pack_sizes`` recursed once per tree level, so
a chain of a few thousand modules (a single row or stack) died with
``RecursionError``.  Both the object-tier packer and the flat kernel
are now explicit-stack traversals; these tests pin that down at 5000+
modules, well past the default interpreter recursion limit.
"""

from __future__ import annotations

import sys

import pytest

from repro.bstar.packing import pack_sizes
from repro.bstar.tree import BStarTree
from repro.geometry import Module, ModuleSet
from repro.perf import BStarKernel, pack_tree_coords

N_DEEP = 5000


@pytest.fixture(scope="module")
def deep_names():
    return [f"m{i}" for i in range(N_DEEP)]


@pytest.fixture(scope="module")
def deep_sizes(deep_names):
    return {name: (1.0, 2.0) for name in deep_names}


def test_chain_depth_exceeds_recursion_limit(deep_names):
    assert N_DEEP > sys.getrecursionlimit()


@pytest.mark.parametrize("direction", ["left", "right"])
def test_pack_sizes_handles_deep_chain(deep_names, deep_sizes, direction):
    tree = BStarTree.chain(deep_names, direction=direction)
    rects = pack_sizes(tree, deep_sizes)
    assert len(rects) == N_DEEP
    if direction == "left":
        # a left chain is a row: x advances by one module width each step
        assert rects[deep_names[-1]].x0 == float(N_DEEP - 1)
        assert all(r.y0 == 0.0 for r in rects.values())
    else:
        # a right chain is a stack: y advances by one module height
        assert rects[deep_names[-1]].y0 == 2.0 * (N_DEEP - 1)
        assert all(r.x0 == 0.0 for r in rects.values())


@pytest.mark.parametrize("direction", ["left", "right"])
def test_kernel_handles_deep_chain(deep_names, deep_sizes, direction):
    tree = BStarTree.chain(deep_names, direction=direction)
    coords = pack_tree_coords(tree, deep_sizes)
    assert len(coords) == N_DEEP
    rects = pack_sizes(tree, deep_sizes)
    assert coords == {
        name: (r.x0, r.y0, r.x1, r.y1) for name, r in rects.items()
    }


def test_full_kernel_packs_deep_chain(deep_names):
    modules = ModuleSet.of([Module.hard(n, 1.0, 2.0) for n in deep_names])
    tree = BStarTree.chain(deep_names, direction="left")
    kernel = BStarKernel(modules)
    coords = kernel.pack(tree)
    assert len(coords) == N_DEEP
    x0, y0, x1, y1 = coords[deep_names[-1]]
    assert (x0, y0) == (float(N_DEEP - 1), 0.0)
