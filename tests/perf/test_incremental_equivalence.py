"""Incremental evaluation must equal full repack, bit for bit.

These tests lock the PR-2 contract the same way ``tests/perf/`` locked
PR 1: over random perturbation sequences — including rejected moves and
their rollbacks, orientation and variant overrides, soft modules and
square (rotation-neutral) footprints — the dirty-suffix engine's cost,
coordinates, pre-order book-keeping and HPWL cache all agree exactly
(``==``, no tolerances) with a from-scratch ``pack_tree_coords`` +
unified :class:`repro.cost.CostModel` evaluation of the same state.  Every placer wired
onto the incremental protocol gets the same commit *and* rollback
treatment.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anneal import (
    Annealer,
    FunctionMoveSet,
    GeometricSchedule,
    IncrementalAnnealer,
    StateEngine,
)
from repro.bstar import BStarPlacer, BStarPlacerConfig, HierarchicalPlacer
from repro.bstar.hb_tree import HBIncrementalEngine, HBStarTreePlacement
from repro.circuit import fig2_design, miller_opamp, simple_testcase
from repro.geometry import Module, ModuleSet, Net
from repro.cost import model_for_config
from repro.perf import (
    BStarKernel,
    DeltaHPWL,
    FullRepackBStarEngine,
    IncrementalBStarEngine,
    hpwl_of,
    resolve_nets,
)
from repro.perf.coords import placement_to_coords
from repro.seqpair import SequencePairPlacer
from repro.seqpair.placer import PlacerConfig, _SeqPairEngine
from repro.slicing import SlicingPlacer, SlicingPlacerConfig
from repro.slicing.placer import _SlicingEngine

from tests.strategies import mixed_module_sets


def _walk_both(inc, full, steps: int, seed: int, kernel=None, check_every: int = 7):
    """Drive both engines through an identical random walk with random
    accept/reject decisions, asserting bit-equality throughout."""
    r1, r2 = random.Random(seed), random.Random(seed)
    accept = random.Random(seed + 1)
    for step in range(steps):
        c1 = inc.propose(r1)
        c2 = full.propose(r2)
        assert c1 == c2, f"step {step}: {c1} != {c2}"
        if accept.random() < 0.5:
            inc.commit()
            full.commit()
        else:
            inc.rollback()
            full.rollback()
        if kernel is not None and step % check_every == 0:
            # the engine's committed state must evaluate (and pack)
            # identically through the full PR-1 kernel
            state = inc.snapshot()
            packed = kernel.pack(state.tree, state.orientations, state.variants)
            assert inc._coords == packed
            assert inc._order == list(inc._tree.preorder())


class TestIncrementalBStarEngine:
    @settings(max_examples=40, deadline=None)
    @given(mixed_module_sets(min_size=2, max_size=14), st.integers(0, 2**31))
    def test_matches_full_repack_over_random_walks(self, mods, seed):
        rng = random.Random(seed)
        nets = ()
        if len(mods.names()) >= 2:
            names = mods.names()
            nets = tuple(
                Net(f"n{i}", tuple(rng.sample(names, 2)))
                for i in range(min(6, len(names)))
            )
        config = BStarPlacerConfig(wirelength_weight=0.7, aspect_weight=0.2)
        inc = IncrementalBStarEngine(mods, nets, (), config)
        full = FullRepackBStarEngine(mods, nets, (), config)
        kernel = BStarKernel(mods, nets, (), config)
        init = inc.initial_state(rng)
        assert inc.reset(init) == full.reset(init)
        _walk_both(inc, full, steps=60, seed=seed ^ 0x5A5A, kernel=kernel)
        inc._tree.validate()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31))
    def test_nets_with_multi_pin_and_dangling(self, seed):
        rng = random.Random(seed)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(10)]
        )
        names = mods.names()
        nets = tuple(
            [Net(f"t{i}", tuple(rng.sample(names, 3)), weight=1.5) for i in range(3)]
            + [Net(f"n{i}", tuple(rng.sample(names, 2))) for i in range(5)]
            + [Net("ghost", (names[0], "nowhere"))]
        )
        config = BStarPlacerConfig(wirelength_weight=0.5)
        inc = IncrementalBStarEngine(mods, nets, (), config)
        full = FullRepackBStarEngine(mods, nets, (), config)
        init = inc.initial_state(rng)
        assert inc.reset(init) == full.reset(init)
        _walk_both(inc, full, steps=50, seed=seed)

    def test_reject_all_walk_preserves_state(self):
        """A run of nothing but rollbacks must leave every engine
        structure exactly as reset() built it."""
        rng = random.Random(5)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(12)]
        )
        nets = tuple(
            Net(f"n{i}", (f"m{i}", f"m{(i + 3) % 12}")) for i in range(10)
        )
        config = BStarPlacerConfig()
        engine = IncrementalBStarEngine(mods, nets, (), config)
        cost0 = engine.reset(engine.initial_state(rng))
        coords0 = dict(engine._coords)
        order0 = list(engine._order)
        tree0 = engine._tree.clone()
        vals0 = list(engine._eval._delta._vals)
        for _ in range(40):
            engine.propose(rng)
            engine.rollback()
        assert engine._cost == cost0
        assert engine._coords == coords0
        assert engine._order == order0
        assert engine._tree.left == tree0.left
        assert engine._tree.right == tree0.right
        assert engine._tree.parent == tree0.parent
        assert engine._tree.root == tree0.root
        assert engine._eval._delta._vals == vals0

    def test_snapshot_is_isolated(self):
        rng = random.Random(3)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(8)]
        )
        config = BStarPlacerConfig()
        engine = IncrementalBStarEngine(mods, (), (), config)
        engine.reset(engine.initial_state(rng))
        snap = engine.snapshot()
        frozen = dict(snap.tree.left)
        for _ in range(25):
            engine.propose(rng)
            engine.commit()
        assert snap.tree.left == frozen  # snapshots never alias engine state

    def test_annealed_best_cost_matches_full_twin(self):
        """Whole annealing runs: identical walks, identical best costs."""
        rng = random.Random(0)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 10), rng.uniform(1, 10)) for i in range(20)]
        )
        names = mods.names()
        nets = tuple(Net(f"n{i}", (names[i], names[(i + 7) % 20])) for i in range(15))
        config = BStarPlacerConfig(seed=4, alpha=0.85, steps_per_epoch=15, t_final=1e-3)
        schedule = GeometricSchedule(
            t_initial=config.t_initial,
            t_final=config.t_final,
            alpha=config.alpha,
            steps_per_epoch=config.steps_per_epoch,
        )

        def run(cls):
            run_rng = random.Random(config.seed)
            engine = cls(mods, nets, (), config)
            engine.reset(engine.initial_state(run_rng))
            return IncrementalAnnealer(engine, schedule, run_rng).run()

        a = run(IncrementalBStarEngine)
        b = run(FullRepackBStarEngine)
        assert a.best_cost == b.best_cost
        assert a.stats.accepted == b.stats.accepted
        kernel = BStarKernel(mods, nets, (), config)
        assert (
            kernel.cost(a.best_state.tree, a.best_state.orientations, a.best_state.variants)
            == a.best_cost
        )


class TestDeltaHPWL:
    @settings(max_examples=30, deadline=None)
    @given(mixed_module_sets(min_size=2, max_size=10), st.integers(0, 2**31))
    def test_totals_match_hpwl_of(self, mods, seed):
        from repro.bstar.tree import BStarTree

        rng = random.Random(seed)
        names = mods.names()
        nets = tuple(
            Net(f"n{i}", tuple(rng.sample(names, min(len(names), rng.choice((2, 2, 2, 3))))))
            for i in range(6)
        ) if len(names) >= 2 else ()
        resolved = resolve_nets(nets, names)
        kernel = BStarKernel(mods)
        delta = DeltaHPWL(resolved, names)
        coords = kernel.pack(BStarTree.random(names, rng))
        assert delta.reset(dict(coords)) == hpwl_of(resolved, coords)
        committed = hpwl_of(resolved, coords)
        for _ in range(15):
            cand = kernel.pack(BStarTree.random(names, rng))
            total = delta.propose(dict(cand))
            assert total == hpwl_of(resolved, cand)
            if rng.random() < 0.5:
                delta.commit()
                committed = total
            else:
                delta.rollback()
            assert delta.total() == committed

    def test_batch_path_matches_scalar(self):
        """The numpy pin-index batch recompute produces the same floats
        as the scalar per-net path."""
        rng = random.Random(11)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(30)]
        )
        names = mods.names()
        nets = tuple(
            [Net(f"n{i}", tuple(rng.sample(names, 2)), weight=rng.uniform(0.5, 2.0)) for i in range(40)]
            + [Net(f"t{i}", tuple(rng.sample(names, 4))) for i in range(10)]
        )
        resolved = resolve_nets(nets, names)
        from repro.bstar.tree import BStarTree

        kernel = BStarKernel(mods)
        scalar = DeltaHPWL(resolved, names, batch_min_nets=10**9)  # never batch
        batch = DeltaHPWL(resolved, names, batch_min_nets=1, batch_fraction=0.0)
        coords = kernel.pack(BStarTree.random(names, rng))
        assert scalar.reset(dict(coords)) == batch.reset(dict(coords))
        for _ in range(10):
            cand = dict(kernel.pack(BStarTree.random(names, rng)))
            t_scalar = scalar.propose(cand)
            t_batch = batch.propose(cand)
            assert t_scalar == t_batch == hpwl_of(resolved, cand)
            assert scalar._vals == batch._vals
            scalar.commit()
            batch.commit()

    def test_batch_tables_cached_across_proposes(self):
        """The numpy batch path builds its name->row map and pin-index
        tables once and reuses a preallocated value buffer; rebuilding
        them per propose (the pre-cache behavior) must be measurably
        slower, and caching must not change a single float."""
        import time

        rng = random.Random(7)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(60)]
        )
        names = mods.names()
        nets = tuple(
            [Net(f"n{i}", tuple(rng.sample(names, 2))) for i in range(220)]
            + [Net(f"t{i}", tuple(rng.sample(names, 5))) for i in range(30)]
        )
        resolved = resolve_nets(nets, names)
        from repro.bstar.tree import BStarTree

        kernel = BStarKernel(mods)
        cached = DeltaHPWL(resolved, names, batch_min_nets=1, batch_fraction=0.0)
        rebuilt = DeltaHPWL(resolved, names, batch_min_nets=1, batch_fraction=0.0)
        base = dict(kernel.pack(BStarTree.random(names, rng)))
        assert cached.reset(dict(base)) == rebuilt.reset(dict(base))
        cands = [
            dict(kernel.pack(BStarTree.random(names, rng))) for _ in range(40)
        ]

        def drive(delta, drop_tables):
            t0 = time.perf_counter()
            totals = []
            for cand in cands:
                if drop_tables:
                    delta._np_tables = None
                    delta._row_index = None
                    delta._np_buf = None
                totals.append(delta.propose(cand))
                delta.rollback()
            return time.perf_counter() - t0, totals

        best_cached = best_rebuilt = float("inf")
        for _ in range(3):
            elapsed, cached_totals = drive(cached, drop_tables=False)
            best_cached = min(best_cached, elapsed)
            elapsed, rebuilt_totals = drive(rebuilt, drop_tables=True)
            best_rebuilt = min(best_rebuilt, elapsed)
            assert cached_totals == rebuilt_totals
        # generous noise margin: table construction dominates the
        # rebuild path at this size, so even loaded CI clears 1.2x
        assert best_rebuilt > best_cached * 1.2, (
            f"cached batch tables gained nothing: cached {best_cached:.4f}s "
            f"vs rebuild-per-propose {best_rebuilt:.4f}s"
        )


class TestHBIncrementalEngine:
    @pytest.mark.parametrize(
        "make",
        [fig2_design, miller_opamp, lambda: simple_testcase(12, seed=4)],
        ids=["fig2", "miller", "synth12"],
    )
    def test_matches_uncached_cost_with_commit_and_rollback(self, make):
        circuit = make()
        config = BStarPlacerConfig(proximity_weight=2.5, wirelength_weight=0.5)
        modules = circuit.modules()
        hb = HBStarTreePlacement(circuit.hierarchy, modules)
        fast = model_for_config(modules, circuit.nets, circuit.constraints().proximity, config)
        engine = HBIncrementalEngine(
            hb, modules, circuit.nets, circuit.constraints().proximity, config
        )
        rng = random.Random(2)
        state = hb.initial_state(rng)
        assert engine.reset(state) == fast(hb.pack_coords(state))
        walk = random.Random(3)
        accept = random.Random(4)
        for _ in range(40):
            engine.propose(walk)
            if accept.random() < 0.5:
                engine.commit()
            else:
                engine.rollback()
            # committed engine state must evaluate identically uncached
            assert engine._cost == fast(hb.pack_coords(engine.snapshot()))

    def test_trajectory_identical_to_functional_path(self):
        """HierarchicalPlacer draws and costs are unchanged by the
        engine, so whole runs match the PR-1 functional loop exactly."""
        circuit = fig2_design()
        config = BStarPlacerConfig(seed=7, alpha=0.85, steps_per_epoch=15, t_final=1e-3)
        placer = HierarchicalPlacer(circuit, config)
        schedule = GeometricSchedule(
            t_initial=config.t_initial,
            t_final=config.t_final,
            alpha=config.alpha,
            steps_per_epoch=config.steps_per_epoch,
        )
        rng = random.Random(config.seed)
        annealer = Annealer(placer.cost, placer._hb, schedule, rng)
        functional = annealer.run(placer._hb.initial_state(rng))
        incremental = placer.run()
        assert incremental.cost == functional.best_cost
        assert incremental.placement.positions() == placer._hb.pack(
            functional.best_state
        ).positions()


class TestSeqPairEngine:
    def test_matches_placer_cost_with_commit_and_rollback(self):
        rng = random.Random(1)
        mods = ModuleSet.of(
            [Module.hard("a1", 4, 6), Module.hard("a2", 4, 6)]
            + [Module.hard(f"m{i}", rng.uniform(1, 8), rng.uniform(1, 8)) for i in range(8)]
        )
        from repro.circuit import SymmetryGroup

        groups = (SymmetryGroup("g", pairs=(("a1", "a2"),)),)
        names = mods.names()
        nets = tuple(Net(f"n{i}", tuple(rng.sample(names, 2))) for i in range(6))
        config = PlacerConfig(wirelength_weight=0.5, aspect_weight=0.1)
        placer = SequencePairPlacer(mods, groups, nets, config)
        engine = _SeqPairEngine(placer)
        state = placer._moves.initial_state(rng)
        assert engine.reset(state) == placer.cost(state)
        accept = random.Random(2)
        for _ in range(30):
            cost = engine.propose(rng)
            assert cost == placer.cost(engine._candidate)
            if accept.random() < 0.5:
                engine.commit()
            else:
                engine.rollback()
            assert engine._cost == placer.cost(engine.snapshot())

    def test_run_matches_functional_annealer(self):
        """run() through the protocol equals the PR-1 functional loop."""
        rng = random.Random(6)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 8), rng.uniform(1, 8)) for i in range(7)]
        )
        nets = tuple(Net(f"n{i}", (f"m{i}", f"m{(i + 2) % 7}")) for i in range(5))
        config = PlacerConfig(seed=3, alpha=0.85, steps_per_epoch=12, t_final=1e-3)
        placer = SequencePairPlacer(mods, (), nets, config)
        schedule = GeometricSchedule(
            t_initial=config.t_initial,
            t_final=config.t_final,
            alpha=config.alpha,
            steps_per_epoch=config.steps_per_epoch,
        )
        run_rng = random.Random(config.seed)
        annealer = Annealer(placer.cost, placer._moves, schedule, run_rng)
        functional = annealer.run(placer._moves.initial_state(run_rng))
        incremental = placer.run()
        assert incremental.cost == functional.best_cost
        assert incremental.state == functional.best_state


class TestSlicingEngine:
    def test_matches_placer_cost_with_commit_and_rollback(self):
        rng = random.Random(4)
        mods = ModuleSet.of(
            [Module.hard(f"b{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(8)]
        )
        names = mods.names()
        nets = tuple(Net(f"n{i}", tuple(rng.sample(names, 2))) for i in range(5))
        config = SlicingPlacerConfig(wirelength_weight=0.4)
        placer = SlicingPlacer(mods, nets, config)
        engine = _SlicingEngine(placer)
        from repro.slicing.polish import PolishExpression

        expr = PolishExpression.random(mods.names(), rng)
        assert engine.reset(expr) == placer.cost(expr)
        accept = random.Random(5)
        for _ in range(25):
            cost = engine.propose(rng)
            assert cost == placer.cost(engine._candidate)
            if accept.random() < 0.5:
                engine.commit()
            else:
                engine.rollback()
            assert engine._cost == placer.cost(engine.snapshot())

    def test_run_matches_functional_annealer(self):
        rng = random.Random(9)
        mods = ModuleSet.of(
            [Module.hard(f"b{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(7)]
        )
        config = SlicingPlacerConfig(seed=2, alpha=0.85, steps_per_epoch=12)
        placer = SlicingPlacer(mods, config=config)
        schedule = GeometricSchedule(
            t_initial=config.t_initial,
            t_final=config.t_final,
            alpha=config.alpha,
            steps_per_epoch=config.steps_per_epoch,
        )
        from repro.slicing.polish import PolishExpression

        run_rng = random.Random(config.seed)
        annealer = Annealer(placer.cost, FunctionMoveSet(placer._move), schedule, run_rng)
        functional = annealer.run(PolishExpression.random(mods.names(), run_rng))
        incremental = placer.run()
        assert incremental.cost == functional.best_cost
        assert incremental.expression == functional.best_state


class TestIncrementalAnnealer:
    def test_state_engine_adapter_matches_functional_annealer(self):
        """The StateEngine adapter consumes randomness exactly like the
        functional loop, so results coincide for any cost/move pair."""

        def cost(x: float) -> float:
            return (x - 3.0) ** 2

        def step(x: float, rng: random.Random) -> float:
            return x + rng.gauss(0.0, 0.5)

        schedule = GeometricSchedule(t_final=0.01, steps_per_epoch=10)
        functional = Annealer(
            cost, FunctionMoveSet(step), schedule, random.Random(42)
        ).run(5.0)
        engine = StateEngine(cost, FunctionMoveSet(step), 5.0)
        incremental = IncrementalAnnealer(
            engine, schedule, random.Random(42)
        ).run()
        assert incremental.best_state == functional.best_state
        assert incremental.best_cost == functional.best_cost
        assert incremental.stats.accepted == functional.stats.accepted
        assert incremental.stats.improved == functional.stats.improved

    def test_flat_placer_produces_valid_best(self, small_modules):
        config = BStarPlacerConfig(seed=1, alpha=0.85, steps_per_epoch=15, t_final=1e-3)
        result = BStarPlacer(small_modules, config=config).run()
        assert result.placement.is_overlap_free()
        # the reported best cost is the kernel cost of the best state
        placer = BStarPlacer(small_modules, config=config)
        packed = placement_to_coords(result.placement)
        model = model_for_config(small_modules, (), (), config)
        assert model(packed) == result.cost
