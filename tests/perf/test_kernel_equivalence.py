"""Equivalence of the fast kernel against the object-tier pack/cost.

The whole point of ``repro.perf`` is that the hot loop computes the
*same floats* as the rich object path — these tests assert exact
(bit-level, ``==``) equality of coordinates and costs over randomized
trees, variants, orientations and hierarchies, so any drift between the
two tiers fails loudly.
"""

from __future__ import annotations

import random

import pytest

from repro.bstar import (
    BStarPlacer,
    BStarPlacerConfig,
    HBStarTreePlacement,
    HierarchicalPlacer,
)
from repro.bstar.packing import pack
from repro.bstar.tree import BStarTree
from repro.circuit import fig2_design, miller_opamp, simple_testcase
from repro.bstar.contour import Contour
from repro.cost import model_for_config
from repro.geometry import Module, ModuleSet, Net, Orientation, total_hpwl
from repro.perf import BStarKernel, Skyline, placement_to_coords


def _legacy_object_cost(modules, nets, proximity, config):
    """The pre-refactor object-tier cost formula, verbatim.

    This replicates the deleted ``bstar.placer._CostModel`` operation
    for operation (same accumulation order, same gates) and stays here
    as the ground truth the flat kernel and the unified
    :class:`repro.cost.CostModel` are pinned against.
    """

    area_scale = max(modules.total_module_area(), 1e-12)
    wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)

    def cost(placement):
        bb = placement.bounding_box()
        total = config.area_weight * bb.area / area_scale
        if nets and config.wirelength_weight:
            total += config.wirelength_weight * total_hpwl(nets, placement) / wl_scale
        if config.aspect_weight and bb.width > 0 and bb.height > 0:
            ratio = bb.height / bb.width
            deviation = max(ratio, 1.0 / ratio) / max(config.target_aspect, 1e-12)
            total += config.aspect_weight * max(0.0, deviation - 1.0)
        if config.proximity_weight:
            for group in proximity:
                if not group.is_satisfied(placement):
                    total += config.proximity_weight
        return total

    return cost


def _mixed_modules(n_hard: int = 12, n_soft: int = 8, seed: int = 0) -> ModuleSet:
    rng = random.Random(seed)
    mods = [
        Module.hard(f"m{i}", rng.uniform(1, 10), rng.uniform(1, 10))
        for i in range(n_hard)
    ]
    mods += [Module.soft(f"s{i}", rng.uniform(5, 40)) for i in range(n_soft)]
    return ModuleSet.of(mods)


def _random_nets(names, rng, n_two: int = 15, n_multi: int = 5) -> tuple[Net, ...]:
    nets = []
    for i in range(n_two):
        a, b = rng.sample(names, 2)
        nets.append(Net(f"n{i}", (a, b)))
    for i in range(n_multi):
        nets.append(Net(f"t{i}", tuple(rng.sample(names, 3))))
    return tuple(nets)


def _random_state(mods: ModuleSet, rng: random.Random):
    names = mods.names()
    tree = BStarTree.random(names, rng)
    orientations = {
        n: rng.choice((Orientation.R0, Orientation.R90))
        for n in names
        if rng.random() < 0.5
    }
    variants = {
        m.name: rng.randrange(len(m.variants)) for m in mods if rng.random() < 0.5
    }
    return tree, orientations, variants


class TestFlatKernel:
    @pytest.mark.parametrize("seed", range(20))
    def test_coords_match_pack_exactly(self, seed):
        mods = _mixed_modules(seed=seed)
        rng = random.Random(seed)
        kernel = BStarKernel(mods)
        tree, orientations, variants = _random_state(mods, rng)
        placement = pack(tree, mods, orientations, variants)
        assert kernel.pack(tree, orientations, variants) == placement_to_coords(placement)

    @pytest.mark.parametrize("seed", range(20))
    def test_cost_matches_cost_model_exactly(self, seed):
        mods = _mixed_modules(seed=seed)
        rng = random.Random(seed)
        nets = _random_nets(mods.names(), rng)
        config = BStarPlacerConfig(wirelength_weight=0.7, aspect_weight=0.2)
        kernel = BStarKernel(mods, nets, (), config)
        reference = _legacy_object_cost(mods, nets, (), config)
        tree, orientations, variants = _random_state(mods, rng)
        placement = pack(tree, mods, orientations, variants)
        assert kernel.cost(tree, orientations, variants) == reference(placement)

    def test_placement_materialization_round_trips(self):
        mods = _mixed_modules()
        rng = random.Random(3)
        kernel = BStarKernel(mods)
        tree, orientations, variants = _random_state(mods, rng)
        rich = kernel.placement(tree, orientations, variants)
        assert rich.positions() == pack(tree, mods, orientations, variants).positions()

    def test_kernel_instance_is_reusable(self):
        """One kernel (and its skyline) serves many packs, like one
        annealing run reuses it for every step."""
        mods = _mixed_modules()
        kernel = BStarKernel(mods)
        rng = random.Random(9)
        for _ in range(30):
            tree, orientations, variants = _random_state(mods, rng)
            placement = pack(tree, mods, orientations, variants)
            assert kernel.pack(tree, orientations, variants) == placement_to_coords(placement)

    def test_placer_cost_is_kernel_cost(self, small_modules):
        config = BStarPlacerConfig(seed=2)
        placer = BStarPlacer(small_modules, config=config)
        reference = _legacy_object_cost(small_modules, (), (), config)
        rng = random.Random(0)
        state = placer._moves.initial_state(rng)
        for _ in range(25):
            packed = pack(state.tree, small_modules, state.orientations, state.variants)
            assert placer.cost(state) == reference(packed)
            state = placer._moves.propose(state, rng)


class TestSkylineAndContour:
    def test_skyline_matches_contour(self):
        """raise_over must agree with Contour's height_over + place.

        raise_over subsumes the old height_over query (it returns the
        max height over the interval *before* raising), so the fused
        call is checked against the Contour reference directly.
        """
        rng = random.Random(11)
        skyline = Skyline()
        contour = Contour()
        for _ in range(200):
            x0 = rng.uniform(0, 50)
            x1 = x0 + rng.uniform(0.1, 10)
            h = rng.uniform(0.1, 5)
            expected = contour.height_over(x0, x1)
            contour.place(x0, x1, expected + h)
            assert skyline.raise_over(x0, x1, h) == expected
            assert skyline.max_height() == contour.max_height()

    def test_skyline_reset(self):
        skyline = Skyline()
        assert skyline.raise_over(0.0, 4.0, 3.0) == 0.0
        assert skyline.max_height() == 3.0
        skyline.reset()
        # a fresh probe over the reset skyline sees height 0 everywhere
        assert skyline.raise_over(0.0, 100.0, 1.0) == 0.0

    def test_skyline_snapshot_restore(self):
        """Checkpoints restore the exact segment list (the incremental
        engine's suffix repack depends on this round-trip)."""
        skyline = Skyline()
        skyline.raise_over(0.0, 4.0, 3.0)
        snap = skyline.snapshot()
        skyline.raise_over(1.0, 2.0, 5.0)
        assert skyline.max_height() == 8.0
        skyline.restore(snap)
        assert skyline.snapshot() == snap
        assert skyline.raise_over(0.0, 4.0, 1.0) == 3.0

    def test_skyline_bounding_helpers(self):
        """rightmost_edge / max_height equal the packed modules' maxima."""
        rng = random.Random(13)
        mods = _mixed_modules(seed=13)
        kernel = BStarKernel(mods)
        tree, orientations, variants = _random_state(mods, rng)
        coords = kernel.pack(tree, orientations, variants)
        sky = kernel._skyline
        assert sky.rightmost_edge() == max(c[2] for c in coords.values())
        assert sky.max_height() == max(c[3] for c in coords.values())

    def test_contour_reset(self):
        contour = Contour()
        contour.place(1.0, 3.0, 2.5)
        assert contour.max_height() == 2.5
        contour.reset()
        assert contour.max_height() == 0.0
        assert contour.profile() == [(0.0, float("inf"), 0.0)]
        # a reused contour packs exactly like a fresh one
        contour.place(0.0, 2.0, 1.0)
        fresh = Contour()
        fresh.place(0.0, 2.0, 1.0)
        assert contour.profile() == fresh.profile()

    def test_pack_sizes_reuses_contour(self):
        from repro.bstar.packing import pack_sizes

        sizes = {"a": (2.0, 3.0), "b": (4.0, 1.0), "c": (1.0, 5.0)}
        contour = Contour()
        rng = random.Random(4)
        for _ in range(10):
            tree = BStarTree.random(tuple(sizes), rng)
            assert pack_sizes(tree, sizes, contour) == pack_sizes(tree, sizes)


class TestHierarchicalCoords:
    @pytest.mark.parametrize(
        "make",
        [fig2_design, miller_opamp, lambda: simple_testcase(12, seed=4)],
        ids=["fig2", "miller", "synth12"],
    )
    def test_pack_coords_matches_pack(self, make):
        """Symmetry islands, common-centroid arrays and nested levels all
        produce bit-identical coordinates on the flat tier."""
        circuit = make()
        hb = HBStarTreePlacement(circuit.hierarchy, circuit.modules())
        rng = random.Random(0)
        state = hb.initial_state(rng)
        for _ in range(40):
            assert hb.pack_coords(state) == placement_to_coords(hb.pack(state))
            state = hb.propose(state, rng)

    def test_placer_cost_matches_object_cost(self):
        circuit = fig2_design()
        config = BStarPlacerConfig()
        placer = HierarchicalPlacer(circuit, config)
        reference = _legacy_object_cost(
            circuit.modules(), circuit.nets, circuit.constraints().proximity, config
        )
        rng = random.Random(1)
        hb = placer._hb
        state = hb.initial_state(rng)
        for _ in range(40):
            assert placer.cost(state) == reference(hb.pack(state))
            state = hb.propose(state, rng)


class TestUnifiedCostModel:
    def test_proximity_term_matches(self):
        circuit = fig2_design()
        config = BStarPlacerConfig(proximity_weight=3.5)
        proximity = circuit.constraints().proximity
        assert proximity, "fig2 should carry a proximity group"
        fast = model_for_config(circuit.modules(), circuit.nets, proximity, config)
        reference = _legacy_object_cost(circuit.modules(), circuit.nets, proximity, config)
        hb = HBStarTreePlacement(circuit.hierarchy, circuit.modules())
        rng = random.Random(5)
        state = hb.initial_state(rng)
        for _ in range(20):
            placement = hb.pack(state)
            assert fast(placement_to_coords(placement)) == reference(placement)
            state = hb.propose(state, rng)
