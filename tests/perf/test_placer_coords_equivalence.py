"""Coordinate-tier equivalence for the sequence-pair and slicing flows,
plus the satellite behaviors (bounding-box cache, hoisted move tables)."""

from __future__ import annotations

import random

import pytest

from repro.circuit import SymmetryGroup
from repro.geometry import Module, ModuleSet, Net, Placement, Rect, total_hpwl
from repro.perf import hpwl_of, placement_to_coords, resolve_nets
from repro.seqpair import SequencePairPlacer
from repro.seqpair.moves import SymmetricMoveSet
from repro.seqpair.placer import PlacerConfig
from repro.seqpair.symmetry import pack_symmetric, pack_symmetric_coords
from repro.shapes import ShapeFunction
from repro.slicing.packing import shape_function_of
from repro.slicing.polish import PolishExpression


def _sym_problem(seed=1, extra=10):
    rng = random.Random(seed)
    mods = ModuleSet.of(
        [
            Module.hard("a1", 4, 6),
            Module.hard("a2", 4, 6),
            Module.hard("c", 5, 3, rotatable=False),
        ]
        + [Module.hard(f"m{i}", rng.uniform(1, 8), rng.uniform(1, 8)) for i in range(extra)]
    )
    groups = (SymmetryGroup("g", pairs=(("a1", "a2"),), self_symmetric=("c",)),)
    names = mods.names()
    nets = tuple(
        Net(f"n{i}", tuple(rng.sample(names, 2))) for i in range(8)
    )
    return mods, groups, nets


class TestSeqPairCoords:
    @pytest.mark.parametrize("seed", range(8))
    def test_coords_match_pack_symmetric(self, seed):
        mods, groups, _ = _sym_problem(seed)
        moves = SymmetricMoveSet(mods, groups)
        rng = random.Random(seed)
        state = moves.initial_state(rng)
        for _ in range(15):
            xs, ys, sizes = pack_symmetric_coords(
                state.sp, mods, groups, state.orientations, state.variants
            )
            placement = pack_symmetric(
                state.sp, mods, groups, state.orientations, state.variants
            )
            for p in placement:
                assert (xs[p.name], ys[p.name]) == (p.rect.x0, p.rect.y0)
                # sizes are measured at the base LCS position; the final
                # rect edge is x0 + w with the *raised* x0 — compare the
                # edges the cost path actually uses.
                w, h = sizes[p.name]
                assert (xs[p.name] + w, ys[p.name] + h) == (p.rect.x1, p.rect.y1)
            state = moves.propose(state, rng)

    def test_cost_matches_object_formula(self):
        mods, groups, nets = _sym_problem()
        config = PlacerConfig(wirelength_weight=0.5, aspect_weight=0.1)
        placer = SequencePairPlacer(mods, groups, nets, config)
        # the legacy normalization scales, computed from first principles
        area_scale = max(mods.total_module_area(), 1e-12)
        wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)

        def reference(state):
            placement = placer.pack(state)
            bb = placement.bounding_box()
            cost = config.area_weight * bb.area / area_scale
            if nets and config.wirelength_weight:
                cost += (
                    config.wirelength_weight
                    * total_hpwl(nets, placement)
                    / wl_scale
                )
            if config.aspect_weight and bb.width > 0:
                ratio = bb.height / bb.width
                deviation = max(ratio, 1.0 / ratio) / max(config.target_aspect, 1e-12)
                cost += config.aspect_weight * max(0.0, deviation - 1.0)
            return cost

        rng = random.Random(3)
        state = placer._moves.initial_state(rng)
        for _ in range(25):
            assert placer.cost(state) == reference(state)
            state = placer._moves.propose(state, rng)


class TestSlicingCoords:
    @pytest.mark.parametrize("seed", range(6))
    def test_shape_coords_match_placement(self, seed):
        rng = random.Random(seed)
        mods = ModuleSet.of(
            [Module.hard(f"b{i}", rng.uniform(1, 9), rng.uniform(1, 9)) for i in range(9)]
        )
        expr = PolishExpression.random(mods.names(), rng)
        sf = shape_function_of(expr, mods, max_shapes=16)
        for shape in sf.shapes:
            assert shape.coords() == placement_to_coords(shape.placement())

    def test_module_shape_function_coords(self):
        module = Module.soft("s", 24.0)
        sf = ShapeFunction.from_module(module)
        for shape in sf.shapes:
            assert shape.coords() == placement_to_coords(shape.placement())


class TestResolvedHpwl:
    def test_matches_total_hpwl(self):
        rng = random.Random(7)
        mods = ModuleSet.of(
            [Module.hard(f"m{i}", rng.uniform(1, 5), rng.uniform(1, 5)) for i in range(10)]
        )
        names = mods.names()
        nets = tuple(
            [Net(f"two{i}", tuple(rng.sample(names, 2)), weight=rng.uniform(0.5, 2)) for i in range(6)]
            + [Net(f"multi{i}", tuple(rng.sample(names, 4))) for i in range(3)]
            + [Net("ghost", ("m0", "nowhere"))]  # pin outside the module set
        )
        from repro.bstar.packing import pack
        from repro.bstar.tree import BStarTree

        placement = pack(BStarTree.random(names, rng), mods)
        resolved = resolve_nets(nets, names)
        assert hpwl_of(resolved, placement_to_coords(placement)) == total_hpwl(
            nets, placement
        )


class TestSatellites:
    def test_bounding_box_is_cached(self):
        placement = Placement.of(
            [
                # PlacedModule is validated against the module footprint,
                # so build through the real constructor path.
            ]
        )
        assert placement.bounding_box() == Rect(0.0, 0.0, 0.0, 0.0)
        mods = ModuleSet.of([Module.hard("a", 2, 3), Module.hard("b", 4, 1)])
        from repro.bstar.packing import pack
        from repro.bstar.tree import BStarTree

        placement = pack(BStarTree.chain(("a", "b")), mods)
        first = placement.bounding_box()
        assert placement.bounding_box() is first  # same object: cached
        assert placement.area == first.area
        # transforms return fresh placements with fresh caches
        moved = placement.translated(1.0, 2.0)
        assert moved.bounding_box() == first.translated(1.0, 2.0)

    def test_weighted_move_set_generators_hoisted(self):
        from repro.anneal.annealer import FunctionMoveSet, WeightedMoveSet

        bump = FunctionMoveSet(lambda s, rng: s + 1)
        drop = FunctionMoveSet(lambda s, rng: s - 1)
        moves = WeightedMoveSet([(1.0, bump), (0.0, drop)])
        assert moves._generators == [bump, drop]
        rng = random.Random(0)
        assert all(moves.propose(0, rng) == 1 for _ in range(10))
