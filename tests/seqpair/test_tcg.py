"""Tests for transitive closure graphs and their sequence-pair duality."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Module, ModuleSet
from repro.seqpair import SequencePair, TransitiveClosureGraph, pack_lcs
from tests.strategies import module_sets, names


def tcg_row(ns):
    """All modules in one row: a -> every later module in Ch."""
    horizontal = {
        n: frozenset(ns[i + 1:]) for i, n in enumerate(ns)
    }
    vertical = {n: frozenset() for n in ns}
    return TransitiveClosureGraph(tuple(ns), horizontal, vertical)


class TestValidation:
    def test_row_is_valid(self):
        tcg_row(names(4))

    def test_missing_relation_rejected(self):
        ns = ("a", "b")
        with pytest.raises(ValueError):
            TransitiveClosureGraph(
                ns, {"a": frozenset(), "b": frozenset()}, {"a": frozenset(), "b": frozenset()}
            )

    def test_double_relation_rejected(self):
        ns = ("a", "b")
        with pytest.raises(ValueError):
            TransitiveClosureGraph(
                ns,
                {"a": frozenset({"b"}), "b": frozenset()},
                {"a": frozenset({"b"}), "b": frozenset()},
            )

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            TransitiveClosureGraph(
                ("a",), {"a": frozenset({"a"})}, {"a": frozenset()}
            )

    def test_not_closed_rejected(self):
        # a->b, b->c but not a->c
        ns = ("a", "b", "c")
        with pytest.raises(ValueError):
            TransitiveClosureGraph(
                ns,
                {
                    "a": frozenset({"b"}),
                    "b": frozenset({"c"}),
                    "c": frozenset(),
                },
                {n: frozenset() for n in ns},
            )

    def test_cycle_rejected(self):
        ns = ("a", "b")
        with pytest.raises(ValueError):
            TransitiveClosureGraph(
                ns,
                {"a": frozenset({"b"}), "b": frozenset({"a"})},
                {n: frozenset() for n in ns},
            )


class TestConversion:
    @given(st.integers(1, 9), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_sp_tcg_sp_roundtrip_preserves_relations(self, n, seed):
        sp = SequencePair.random(names(n), random.Random(seed))
        tcg = TransitiveClosureGraph.from_sequence_pair(sp)
        back = tcg.to_sequence_pair()
        for i, a in enumerate(sp.names):
            for b in sp.names[i + 1:]:
                assert sp.relation(a, b) == back.relation(a, b)

    def test_row_roundtrip(self):
        tcg = tcg_row(names(4))
        sp = tcg.to_sequence_pair()
        assert sp.alpha == sp.beta == tuple(names(4))


class TestPacking:
    @given(module_sets(min_size=1, max_size=9), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_packs_identically_to_sequence_pair(self, mods, seed):
        """The same relations must yield the same placement."""
        sp = SequencePair.random(mods.names(), random.Random(seed))
        tcg = TransitiveClosureGraph.from_sequence_pair(sp)
        p_sp = pack_lcs(sp, mods)
        p_tcg = tcg.pack(mods)
        for name in mods.names():
            assert p_tcg[name].rect.x0 == pytest.approx(p_sp[name].rect.x0)
            assert p_tcg[name].rect.y0 == pytest.approx(p_sp[name].rect.y0)

    def test_pack_overlap_free(self):
        mods = ModuleSet.of([Module.hard(n, 2 + i, 3, rotatable=False) for i, n in enumerate(names(5))])
        sp = SequencePair.random(mods.names(), random.Random(5))
        tcg = TransitiveClosureGraph.from_sequence_pair(sp)
        assert tcg.pack(mods).is_overlap_free()
