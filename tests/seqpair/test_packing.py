"""Tests for sequence-pair packing (both packers)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Module, ModuleSet, Orientation
from repro.seqpair import SequencePair, pack_lcs, pack_longest_path
from tests.strategies import module_sets, names


def modules_for(sp, w=2.0, h=3.0):
    return ModuleSet.of([Module.hard(n, w, h) for n in sp.names])


class TestKnownPlacements:
    def test_single_module_at_origin(self):
        sp = SequencePair.identity(["a"])
        p = pack_lcs(sp, modules_for(sp))
        assert p["a"].rect.x0 == 0.0
        assert p["a"].rect.y0 == 0.0

    def test_identity_is_a_row(self):
        sp = SequencePair.identity(["a", "b", "c"])
        p = pack_lcs(sp, modules_for(sp, w=2.0))
        assert p["a"].rect.x0 == 0.0
        assert p["b"].rect.x0 == 2.0
        assert p["c"].rect.x0 == 4.0
        assert all(pm.rect.y0 == 0.0 for pm in p)

    def test_reversed_alpha_is_a_stack(self):
        sp = SequencePair(("c", "b", "a"), ("a", "b", "c"))
        p = pack_lcs(sp, modules_for(sp, h=3.0))
        assert p["a"].rect.y0 == 0.0
        assert p["b"].rect.y0 == 3.0
        assert p["c"].rect.y0 == 6.0
        assert all(pm.rect.x0 == 0.0 for pm in p)

    def test_mixed_example(self):
        # b left of a (both sequences), c above a: (b, a) / (b, a) with c...
        sp = SequencePair(("c", "b", "a"), ("b", "c", "a"))
        mods = modules_for(sp, w=2.0, h=2.0)
        p = pack_lcs(sp, mods)
        # relations: b left-of a; c above b?; c: alpha before b, beta after b -> above b
        assert sp.left_of("b", "a")
        assert sp.below("b", "c")
        assert p["b"].rect.x1 <= p["a"].rect.x0 + 1e-9
        assert p["b"].rect.y1 <= p["c"].rect.y0 + 1e-9

    def test_orientation_applies(self):
        sp = SequencePair.identity(["a", "b"])
        mods = ModuleSet.of([Module.hard("a", 2, 6), Module.hard("b", 2, 6)])
        p = pack_lcs(sp, mods, orientations={"a": Orientation.R90})
        assert p["a"].rect.width == 6
        assert p["b"].rect.x0 == pytest.approx(6.0)

    def test_variants_apply(self):
        sp = SequencePair.identity(["a"])
        mods = ModuleSet.of([Module.soft("a", 16.0, aspect_ratios=(1.0, 4.0))])
        p = pack_lcs(sp, mods, variants={"a": 1})
        assert p["a"].rect.height / p["a"].rect.width == pytest.approx(4.0)


class TestPackingInvariants:
    @given(module_sets(min_size=1, max_size=9), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_overlap_free_and_compact(self, mods, pyrng):
        import random as _r

        rng = _r.Random(pyrng.randint(0, 10**9))
        sp = SequencePair.random(mods.names(), rng)
        p = pack_lcs(sp, mods)
        assert p.is_overlap_free()
        bb = p.bounding_box()
        assert bb.x0 == 0.0 and bb.y0 == 0.0

    @given(module_sets(min_size=1, max_size=9), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_packers_agree(self, mods, pyrng):
        import random as _r

        rng = _r.Random(pyrng.randint(0, 10**9))
        sp = SequencePair.random(mods.names(), rng)
        fast = pack_lcs(sp, mods)
        slow = pack_longest_path(sp, mods)
        for name in mods.names():
            assert fast[name].rect.x0 == pytest.approx(slow[name].rect.x0)
            assert fast[name].rect.y0 == pytest.approx(slow[name].rect.y0)

    @given(module_sets(min_size=2, max_size=8), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_relations_respected(self, mods, pyrng):
        import random as _r

        rng = _r.Random(pyrng.randint(0, 10**9))
        sp = SequencePair.random(mods.names(), rng)
        p = pack_lcs(sp, mods)
        ns = list(mods.names())
        for i, a in enumerate(ns):
            for b in ns[i + 1:]:
                if sp.left_of(a, b):
                    assert p[a].rect.x1 <= p[b].rect.x0 + 1e-9
                elif sp.left_of(b, a):
                    assert p[b].rect.x1 <= p[a].rect.x0 + 1e-9
                elif sp.below(a, b):
                    assert p[a].rect.y1 <= p[b].rect.y0 + 1e-9
                else:
                    assert p[b].rect.y1 <= p[a].rect.y0 + 1e-9

    def test_area_lower_bound(self):
        sp = SequencePair.identity(names(5))
        mods = ModuleSet.of([Module.hard(n, 2, 2) for n in names(5)])
        p = pack_lcs(sp, mods)
        assert p.area >= mods.total_module_area()
