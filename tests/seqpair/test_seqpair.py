"""Tests for the sequence-pair representation."""

import random

import pytest
from hypothesis import given

from repro.seqpair import Relation, SequencePair
from tests.strategies import sequence_pairs


class TestConstruction:
    def test_identity(self):
        sp = SequencePair.identity(["a", "b", "c"])
        assert sp.alpha == sp.beta == ("a", "b", "c")

    def test_mismatched_sequences_rejected(self):
        with pytest.raises(ValueError):
            SequencePair(("a", "b"), ("a", "c"))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SequencePair(("a", "a"), ("a", "a"))

    def test_random_is_permutation(self):
        sp = SequencePair.random(["a", "b", "c", "d"], random.Random(0))
        assert sorted(sp.alpha) == sorted(sp.beta) == ["a", "b", "c", "d"]

    def test_indices(self):
        sp = SequencePair(("a", "b", "c"), ("c", "a", "b"))
        assert sp.alpha_index("b") == 1
        assert sp.beta_index("b") == 2


class TestRelations:
    def test_left_of(self):
        sp = SequencePair(("a", "b"), ("a", "b"))
        assert sp.relation("a", "b") is Relation.LEFT_OF
        assert sp.relation("b", "a") is Relation.RIGHT_OF
        assert sp.left_of("a", "b")

    def test_below(self):
        sp = SequencePair(("b", "a"), ("a", "b"))
        assert sp.relation("a", "b") is Relation.BELOW
        assert sp.relation("b", "a") is Relation.ABOVE
        assert sp.below("a", "b")

    def test_self_relation_raises(self):
        sp = SequencePair.identity(["a", "b"])
        with pytest.raises(ValueError):
            sp.relation("a", "a")

    @given(sequence_pairs(min_size=2, max_size=8))
    def test_every_pair_has_exactly_one_relation(self, sp):
        names = sp.names
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                r_ab = sp.relation(a, b)
                r_ba = sp.relation(b, a)
                opposite = {
                    Relation.LEFT_OF: Relation.RIGHT_OF,
                    Relation.RIGHT_OF: Relation.LEFT_OF,
                    Relation.BELOW: Relation.ABOVE,
                    Relation.ABOVE: Relation.BELOW,
                }
                assert r_ba is opposite[r_ab]


class TestSwaps:
    def test_alpha_swap(self):
        sp = SequencePair(("a", "b", "c"), ("a", "b", "c"))
        swapped = sp.with_alpha_swap(0, 2)
        assert swapped.alpha == ("c", "b", "a")
        assert swapped.beta == sp.beta

    def test_beta_swap(self):
        sp = SequencePair(("a", "b", "c"), ("a", "b", "c"))
        swapped = sp.with_beta_swap(0, 1)
        assert swapped.beta == ("b", "a", "c")
        assert swapped.alpha == sp.alpha

    def test_both_swap_exchanges_positions(self):
        sp = SequencePair(("a", "b", "c"), ("c", "b", "a"))
        swapped = sp.with_both_swap("a", "c")
        assert swapped.alpha == ("c", "b", "a")
        assert swapped.beta == ("a", "b", "c")

    def test_swaps_do_not_mutate(self):
        sp = SequencePair(("a", "b"), ("a", "b"))
        sp.with_alpha_swap(0, 1)
        assert sp.alpha == ("a", "b")

    @given(sequence_pairs(min_size=2, max_size=8))
    def test_double_swap_is_identity(self, sp):
        a, b = sp.names[0], sp.names[1]
        back = sp.with_both_swap(a, b).with_both_swap(a, b)
        assert back.alpha == sp.alpha
        assert back.beta == sp.beta
