"""Tests for the annealing sequence-pair placer."""

import pytest

from repro.circuit import fig1_modules, miller_opamp
from repro.geometry import Net
from repro.seqpair import PlacerConfig, SequencePairPlacer


def quick_config(seed=0):
    return PlacerConfig(seed=seed, alpha=0.85, steps_per_epoch=20, t_final=1e-3)


class TestPlacerOnFig1:
    def test_result_valid(self):
        mods, group = fig1_modules()
        placer = SequencePairPlacer(mods, (group,), config=quick_config())
        result = placer.run()
        p = result.placement
        assert p.is_overlap_free()
        assert group.symmetry_error(p) <= 1e-6
        assert len(p) == len(mods)

    def test_better_than_worst_case(self):
        mods, group = fig1_modules()
        placer = SequencePairPlacer(mods, (group,), config=quick_config())
        result = placer.run()
        # a degenerate row/stack would have usage far above 2.0
        assert result.placement.area_usage() < 2.0

    def test_deterministic(self):
        mods, group = fig1_modules()
        r1 = SequencePairPlacer(mods, (group,), config=quick_config(3)).run()
        r2 = SequencePairPlacer(mods, (group,), config=quick_config(3)).run()
        assert r1.placement.positions() == r2.placement.positions()

    def test_seeds_differ(self):
        mods, group = fig1_modules()
        r1 = SequencePairPlacer(mods, (group,), config=quick_config(1)).run()
        r2 = SequencePairPlacer(mods, (group,), config=quick_config(2)).run()
        # different anneals almost surely end elsewhere
        assert r1.placement.positions() != r2.placement.positions() or (
            r1.cost == pytest.approx(r2.cost)
        )


class TestPlacerOnCircuit:
    def test_for_circuit_honors_all_groups(self):
        circuit = miller_opamp()
        placer = SequencePairPlacer.for_circuit(circuit, quick_config())
        result = placer.run()
        p = result.placement
        assert p.is_overlap_free()
        for group in circuit.constraints().symmetry:
            assert group.symmetry_error(p) <= 1e-6

    def test_wirelength_term_pulls_connected_modules_together(self):
        from repro.geometry import Module, ModuleSet

        mods = ModuleSet.of([Module.hard(f"m{i}", 2, 2, rotatable=False) for i in range(8)])
        nets = (Net("n", ("m0", "m7"), weight=5.0),)
        with_wl = SequencePairPlacer(
            mods, (), nets, PlacerConfig(seed=5, wirelength_weight=4.0, alpha=0.85, steps_per_epoch=30)
        ).run()
        without_wl = SequencePairPlacer(
            mods, (), nets, PlacerConfig(seed=5, wirelength_weight=0.0, alpha=0.85, steps_per_epoch=30)
        ).run()
        d_with = nets[0].hpwl(with_wl.placement)
        d_without = nets[0].hpwl(without_wl.placement)
        assert d_with <= d_without + 1e-9

    def test_stats_populated(self):
        mods, group = fig1_modules()
        result = SequencePairPlacer(mods, (group,), config=quick_config()).run()
        assert result.stats.steps > 0
        assert result.stats.accepted > 0
