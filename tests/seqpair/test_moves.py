"""Tests for the symmetry-preserving move set."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Module, ModuleSet, Orientation
from repro.seqpair import SymmetricMoveSet, is_symmetric_feasible
from tests.strategies import symmetric_problems


class TestInitialState:
    @given(symmetric_problems(), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_initial_state_is_sf(self, problem, seed):
        mods, group = problem
        moves = SymmetricMoveSet(mods, [group])
        state = moves.initial_state(random.Random(seed))
        assert is_symmetric_feasible(state.sp, [group])


class TestMovesPreserveSF:
    @given(symmetric_problems(), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_long_move_chains_stay_sf(self, problem, seed):
        """Section II: the move set must preserve property (1) after each
        move."""
        mods, group = problem
        moves = SymmetricMoveSet(mods, [group])
        rng = random.Random(seed)
        state = moves.initial_state(rng)
        for _ in range(30):
            state = moves.propose(state, rng)
            assert is_symmetric_feasible(state.sp, [group])

    @given(symmetric_problems(), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_moves_do_not_mutate_input(self, problem, seed):
        mods, group = problem
        moves = SymmetricMoveSet(mods, [group])
        rng = random.Random(seed)
        state = moves.initial_state(rng)
        alpha, beta = state.sp.alpha, state.sp.beta
        moves.propose(state, rng)
        assert state.sp.alpha == alpha
        assert state.sp.beta == beta


class TestRotationCoupling:
    def test_pair_rotates_together(self):
        mods = ModuleSet.of(
            [
                Module.hard("a", 2, 4, rotatable=True),
                Module.hard("b", 2, 4, rotatable=True),
            ]
        )
        from repro.circuit import SymmetryGroup

        group = SymmetryGroup("g", pairs=(("a", "b"),))
        moves = SymmetricMoveSet(mods, [group])
        rng = random.Random(0)
        state = moves.initial_state(rng)
        for _ in range(200):
            state = moves.propose(state, rng)
            oa = state.orientations.get("a", Orientation.R0)
            ob = state.orientations.get("b", Orientation.R0)
            assert oa == ob, "pair members must rotate together"

    def test_variant_changes_coupled(self):
        mods = ModuleSet.of(
            [
                Module.soft("a", 16.0, aspect_ratios=(1.0, 2.0), rotatable=False),
                Module.soft("b", 16.0, aspect_ratios=(1.0, 2.0), rotatable=False),
            ]
        )
        from repro.circuit import SymmetryGroup

        group = SymmetryGroup("g", pairs=(("a", "b"),))
        moves = SymmetricMoveSet(mods, [group])
        rng = random.Random(1)
        state = moves.initial_state(rng)
        for _ in range(200):
            state = moves.propose(state, rng)
            assert state.variants.get("a", 0) == state.variants.get("b", 0)
