"""Enumeration tests verifying the counting lemma exactly."""

import pytest

from repro.circuit import SymmetryGroup
from repro.seqpair import (
    all_sequence_pairs,
    count_sf_bruteforce,
    count_sf_closed_form,
    count_sf_semi_enumerated,
    sf_count_upper_bound,
)


class TestAllSequencePairs:
    def test_count_is_n_factorial_squared(self):
        assert sum(1 for _ in all_sequence_pairs(["a", "b", "c"])) == 36


class TestBruteForceMatchesClosedForm:
    @pytest.mark.parametrize(
        "names,group",
        [
            (["a", "b"], SymmetryGroup("g", pairs=(("a", "b"),))),
            (["a", "b", "c"], SymmetryGroup("g", pairs=(("a", "b"),))),
            (["a", "b", "c"], SymmetryGroup("g", self_symmetric=("a", "b"))),
            (
                ["a", "b", "s", "x"],
                SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("s",)),
            ),
            (
                ["a", "b", "c", "d"],
                SymmetryGroup("g", pairs=(("a", "b"), ("c", "d"))),
            ),
        ],
    )
    def test_lemma_exact_for_one_group(self, names, group):
        brute = count_sf_bruteforce(names, [group])
        closed = count_sf_closed_form(len(names), [group])
        assert brute == closed
        assert brute == sf_count_upper_bound(len(names), [group])

    def test_two_disjoint_groups(self):
        names = ["a", "b", "s", "t"]
        groups = [
            SymmetryGroup("g1", pairs=(("a", "b"),)),
            SymmetryGroup("g2", self_symmetric=("s", "t")),
        ]
        assert count_sf_bruteforce(names, groups) == count_sf_closed_form(4, groups)

    def test_no_groups(self):
        names = ["a", "b", "c"]
        assert count_sf_bruteforce(names, []) == 36


class TestSemiEnumeration:
    def test_matches_bruteforce_small(self):
        names = ["a", "b", "c", "d"]
        group = SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("c",))
        assert count_sf_semi_enumerated(names, [group]) == count_sf_bruteforce(
            names, [group]
        )

    def test_paper_n7_number(self):
        """The n = 7 count of section II, via alpha enumeration."""
        names = list("ABCDEFG")
        group = SymmetryGroup(
            "gamma", pairs=(("C", "D"), ("B", "G")), self_symmetric=("A", "F")
        )
        assert count_sf_semi_enumerated(names, [group]) == 35_280
