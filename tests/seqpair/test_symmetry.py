"""Tests for symmetric-feasible codes, the counting lemma, and
symmetric packing — the core of paper section II."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import SymmetryGroup, fig1_modules, fig1_sequence_pair
from repro.seqpair import (
    SequencePair,
    is_symmetric_feasible,
    make_symmetric_feasible,
    pack_symmetric,
    random_symmetric_feasible,
    search_space_reduction,
    sf_count_upper_bound,
    sf_violations,
    total_sequence_pairs,
)
from tests.strategies import symmetric_problems


class TestSFPredicate:
    def test_paper_example_is_sf(self):
        _, group = fig1_modules()
        sp = SequencePair(*fig1_sequence_pair())
        assert is_symmetric_feasible(sp, [group])
        assert sf_violations(sp, [group]) == []

    def test_perturbed_paper_example_is_not_sf(self):
        _, group = fig1_modules()
        alpha, beta = fig1_sequence_pair()
        # swap C and G in beta only: breaks property (1)
        beta = list(beta)
        i, j = beta.index("C"), beta.index("G")
        beta[i], beta[j] = beta[j], beta[i]
        sp = SequencePair(alpha, tuple(beta))
        assert not is_symmetric_feasible(sp, [group])
        assert sf_violations(sp, [group])

    def test_pair_same_order_in_both_sequences(self):
        # (a, b) symmetric pair: same order in alpha and beta => S-F.
        g = SymmetryGroup("g", pairs=(("a", "b"),))
        assert is_symmetric_feasible(SequencePair(("a", "b"), ("a", "b")), [g])
        assert is_symmetric_feasible(SequencePair(("b", "a"), ("b", "a")), [g])
        assert not is_symmetric_feasible(SequencePair(("a", "b"), ("b", "a")), [g])

    def test_no_groups_always_sf(self):
        sp = SequencePair(("a", "b"), ("b", "a"))
        assert is_symmetric_feasible(sp, [])


class TestSFConstruction:
    @given(symmetric_problems(), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_repair_produces_sf(self, problem, seed):
        mods, group = problem
        rng = random.Random(seed)
        sp = SequencePair.random(mods.names(), rng)
        repaired = make_symmetric_feasible(sp, [group])
        assert is_symmetric_feasible(repaired, [group])

    @given(symmetric_problems(), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_repair_keeps_alpha(self, problem, seed):
        mods, group = problem
        rng = random.Random(seed)
        sp = SequencePair.random(mods.names(), rng)
        repaired = make_symmetric_feasible(sp, [group])
        assert repaired.alpha == sp.alpha

    @given(symmetric_problems(), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_repair_is_idempotent(self, problem, seed):
        mods, group = problem
        rng = random.Random(seed)
        sp = random_symmetric_feasible(mods.names(), [group], rng)
        again = make_symmetric_feasible(sp, [group])
        assert again.alpha == sp.alpha
        assert again.beta == sp.beta

    def test_repair_only_touches_group_members(self):
        g = SymmetryGroup("g", pairs=(("a", "b"),))
        sp = SequencePair(("x", "a", "y", "b"), ("b", "x", "a", "y"))
        repaired = make_symmetric_feasible(sp, [g])
        # non-members keep their beta slots
        assert repaired.beta[1] == "x"
        assert repaired.beta[3] == "y"


class TestCountingLemma:
    def test_paper_numbers(self):
        """n = 7, one group with p = 2 pairs and s = 2 self-symmetric:
        35,280 S-F codes of 25,401,600, a 99.86% reduction."""
        _, group = fig1_modules()
        assert total_sequence_pairs(7) == 25_401_600
        assert sf_count_upper_bound(7, [group]) == 35_280
        assert search_space_reduction(7, [group]) == pytest.approx(0.9986, abs=1e-4)

    def test_formula_shape(self):
        # one pair in a 2-cell problem: (2!)^2 / 2! = 2
        g = SymmetryGroup("g", pairs=(("a", "b"),))
        assert sf_count_upper_bound(2, [g]) == 2

    def test_multiple_groups(self):
        g1 = SymmetryGroup("g1", pairs=(("a", "b"),))
        g2 = SymmetryGroup("g2", self_symmetric=("s", "t"))
        import math

        expected = math.factorial(4) ** 2 // (math.factorial(2) * math.factorial(2))
        assert sf_count_upper_bound(4, [g1, g2]) == expected


class TestSymmetricPacking:
    def test_fig1_reproduction(self):
        mods, group = fig1_modules()
        sp = SequencePair(*fig1_sequence_pair())
        p = pack_symmetric(sp, mods, [group])
        assert p.is_overlap_free()
        assert group.symmetry_error(p) == pytest.approx(0.0, abs=1e-6)
        # E is the leftmost cell, like in Fig. 1.
        assert p["E"].rect.x0 == 0.0
        # C is left of D (the pair straddles the axis).
        assert p["C"].rect.x1 <= p["D"].rect.x0

    @given(symmetric_problems(), st.integers(0, 10**6))
    @settings(max_examples=80, deadline=None)
    def test_symmetric_packing_properties(self, problem, seed):
        """For any S-F code: packing is overlap-free, exactly symmetric,
        and respects the sequence-pair left-of relations.

        The overlap check is held at 10x the packer's convergence
        tolerance: pack_symmetric's fixpoint stops once no coordinate
        moves by more than ``tol`` (1e-9), so per-edge residual overlaps
        slightly *above* 1e-9 are within its contract (hypothesis found
        a 1.16e-9 case) — asserting at exactly 1e-9 was a long-standing
        flake, not a packing regression.
        """
        mods, group = problem
        rng = random.Random(seed)
        sp = random_symmetric_feasible(mods.names(), [group], rng)
        p = pack_symmetric(sp, mods, [group])
        assert p.is_overlap_free(tol=1e-8)
        assert group.symmetry_error(p) <= 1e-6

    @given(symmetric_problems(), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_no_worse_than_double_packing(self, problem, seed):
        """Symmetric legalization never shrinks below the unconstrained
        packing's bounding box."""
        from repro.seqpair import pack_lcs

        mods, group = problem
        rng = random.Random(seed)
        sp = random_symmetric_feasible(mods.names(), [group], rng)
        sym = pack_symmetric(sp, mods, [group])
        plain = pack_lcs(sp, mods)
        assert sym.width >= plain.width - 1e-9
        assert sym.height >= plain.height - 1e-9

    def test_mismatched_pair_footprints_rejected(self):
        from repro.geometry import Module, ModuleSet
        from repro.seqpair import SymmetricPackingError

        mods = ModuleSet.of([Module.hard("a", 2, 2), Module.hard("b", 3, 2)])
        g = SymmetryGroup("g", pairs=(("a", "b"),))
        sp = SequencePair(("a", "b"), ("a", "b"))
        with pytest.raises(SymmetricPackingError):
            pack_symmetric(sp, mods, [g])
