"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place", "miller_opamp"])
        assert args.engine == "hbtree"
        assert args.seed == 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "x", "--engine", "magic"])


class TestCommands:
    def test_circuits_lists_all(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "miller-opamp" in out
        assert "lnamixbias" in out

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["place", "not-a-circuit"])

    @pytest.mark.parametrize("engine", ["seqpair", "hbtree", "deterministic", "slicing"])
    def test_place_engines(self, engine, capsys):
        code = main(["place", "miller_opamp", "--engine", engine, "--seed", "1"])
        out = capsys.readouterr().out
        assert "area usage" in out
        if engine != "slicing":  # slicing ignores symmetry constraints
            assert code == 0
            assert "violations: none" in out

    def test_route_command(self, capsys):
        code = main(["route", "fig2", "--seed", "5", "--pitch", "0.5"])
        out = capsys.readouterr().out
        assert "nets routed" in out
        assert code == 0

    def test_table1_single_circuit(self, capsys):
        assert main(["table1", "--circuit", "comparator_v2"]) == 0
        out = capsys.readouterr().out
        assert "comparator_v2" in out
        assert "%" in out

    def test_sizing_aware_meets_specs(self, capsys):
        assert main(["sizing", "--flow", "aware"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_sizing_plain_fails_specs(self, capsys):
        assert main(["sizing", "--flow", "plain"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
