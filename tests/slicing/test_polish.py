"""Tests for normalized Polish expressions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slicing import OPERATORS, PolishExpression
from repro.slicing.packing import pack_slicing
from repro.geometry import Module, ModuleSet
from tests.strategies import names


class TestValidation:
    def test_single_operand(self):
        e = PolishExpression(("a",))
        assert e.n_modules == 1

    def test_row_constructor(self):
        e = PolishExpression.row(["a", "b", "c"])
        assert e.tokens == ("a", "b", "V", "c", "V")
        assert e.is_normalized()

    def test_operator_count_checked(self):
        with pytest.raises(ValueError):
            PolishExpression(("a", "b"))
        with pytest.raises(ValueError):
            PolishExpression(("a", "V"))

    def test_balloting_checked(self):
        with pytest.raises(ValueError):
            PolishExpression(("a", "V", "b"))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            PolishExpression(("a", "a", "V"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PolishExpression(())


class TestNormalization:
    def test_right_skew_normalized(self):
        # a (b c V) V  ->  (a b V) c V
        e = PolishExpression(("a", "b", "c", "V", "V"))
        n = e.normalized()
        assert n.tokens == ("a", "b", "V", "c", "V")
        assert n.is_normalized()

    def test_normalization_preserves_floorplan(self):
        mods = ModuleSet.of(
            [Module.hard(n, 2 + i, 3, rotatable=False) for i, n in enumerate("abc")]
        )
        e = PolishExpression(("a", "b", "c", "V", "V"))
        p1 = pack_slicing(e, mods, rotations=False)
        p2 = pack_slicing(e.normalized(), mods, rotations=False)
        assert p1.bounding_box() == p2.bounding_box()

    @given(st.integers(1, 12), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_random_is_normalized_permutation(self, n, seed):
        ns = names(n)
        e = PolishExpression.random(ns, random.Random(seed))
        assert e.is_normalized()
        assert sorted(e.operands) == sorted(ns)


class TestMoves:
    @given(st.integers(2, 10), st.integers(0, 10**6), st.integers(0, 2))
    @settings(max_examples=80, deadline=None)
    def test_moves_keep_validity(self, n, seed, which):
        rng = random.Random(seed)
        e = PolishExpression.random(names(n), rng)
        moved = [
            e.swap_adjacent_operands,
            e.complement_chain,
            e.swap_operand_operator,
        ][which](rng)
        # constructing the result re-validates balloting and counts
        assert sorted(moved.operands) == sorted(e.operands)

    def test_operand_swap_changes_two_positions(self):
        e = PolishExpression.row(["a", "b", "c"])
        moved = e.swap_adjacent_operands(random.Random(0))
        diffs = [i for i, (x, y) in enumerate(zip(e.tokens, moved.tokens)) if x != y]
        assert len(diffs) == 2

    def test_complement_flips_operators_only(self):
        e = PolishExpression.row(["a", "b", "c"])
        moved = e.complement_chain(random.Random(0))
        assert moved.operands == e.operands
        flipped = [
            (x, y)
            for x, y in zip(e.tokens, moved.tokens)
            if x != y
        ]
        assert flipped
        assert all(x in OPERATORS and y in OPERATORS for x, y in flipped)

    def test_m3_keeps_normalization(self):
        rng = random.Random(3)
        e = PolishExpression.random(names(6), rng)
        for _ in range(30):
            e = e.swap_operand_operator(rng)
            assert e.is_normalized()
