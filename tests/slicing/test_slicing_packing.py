"""Tests for slicing packing and the slicing placer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Module, ModuleSet
from repro.slicing import (
    PolishExpression,
    SlicingPlacer,
    SlicingPlacerConfig,
    pack_slicing,
    shape_function_of,
)
from tests.strategies import module_sets


def mods_abc():
    return ModuleSet.of(
        [
            Module.hard("a", 2, 3, rotatable=False),
            Module.hard("b", 4, 3, rotatable=False),
            Module.hard("c", 6, 2, rotatable=False),
        ]
    )


class TestPackKnown:
    def test_vertical_cut_is_row(self):
        p = pack_slicing(PolishExpression(("a", "b", "V")), mods_abc(), rotations=False)
        assert p["a"].rect.x1 <= p["b"].rect.x0 + 1e-9
        assert p.bounding_box().width == pytest.approx(6.0)
        assert p.bounding_box().height == pytest.approx(3.0)

    def test_horizontal_cut_is_stack(self):
        p = pack_slicing(PolishExpression(("a", "b", "H")), mods_abc(), rotations=False)
        assert p["a"].rect.y1 <= p["b"].rect.y0 + 1e-9
        assert p.bounding_box().height == pytest.approx(6.0)

    def test_nested(self):
        # (a b V) c H: a,b side by side with c on top
        p = pack_slicing(
            PolishExpression(("a", "b", "V", "c", "H")), mods_abc(), rotations=False
        )
        assert p.is_overlap_free()
        assert p.bounding_box().width == pytest.approx(6.0)
        assert p.bounding_box().height == pytest.approx(5.0)

    def test_rotations_help(self):
        mods = ModuleSet.of(
            [Module.hard("a", 1, 6, rotatable=True), Module.hard("b", 6, 1, rotatable=True)]
        )
        p = pack_slicing(PolishExpression(("a", "b", "H")), mods)
        # best stacking rotates one module: 6x2 instead of 6x7
        assert p.area == pytest.approx(12.0)

    def test_shape_function_staircase(self):
        sf = shape_function_of(PolishExpression(("a", "b", "V")), mods_abc())
        widths = [s.width for s in sf]
        assert widths == sorted(widths)


class TestPackProperties:
    @given(module_sets(min_size=1, max_size=9), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_always_legal(self, mods, seed):
        e = PolishExpression.random(mods.names(), random.Random(seed))
        p = pack_slicing(e, mods)
        assert p.is_overlap_free()
        assert {pm.name for pm in p} == set(mods.names())

    @given(module_sets(min_size=2, max_size=8), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_area_at_least_module_area(self, mods, seed):
        e = PolishExpression.random(mods.names(), random.Random(seed))
        p = pack_slicing(e, mods)
        assert p.area >= sum(pm.rect.area for pm in p) - 1e-6


class TestSlicingPlacer:
    def test_end_to_end(self):
        rng = random.Random(5)
        mods = ModuleSet.of(
            [
                Module.hard(f"m{i}", rng.uniform(1, 10), rng.uniform(1, 10), rotatable=False)
                for i in range(8)
            ]
        )
        result = SlicingPlacer(
            mods, config=SlicingPlacerConfig(seed=1, alpha=0.88, steps_per_epoch=25)
        ).run()
        assert result.placement.is_overlap_free()
        assert result.expression.is_normalized()
        assert result.placement.area_usage() < 2.0

    def test_deterministic(self):
        mods = mods_abc()
        cfg = SlicingPlacerConfig(seed=2, alpha=0.85, steps_per_epoch=15)
        r1 = SlicingPlacer(mods, config=cfg).run()
        r2 = SlicingPlacer(mods, config=cfg).run()
        assert r1.placement.positions() == r2.placement.positions()
