"""Unit coverage for the term catalog and model plumbing."""

from __future__ import annotations

import pytest

from repro.bstar import BStarPlacerConfig
from repro.circuit import fig2_design
from repro.cost import (
    DEFAULT_WEIGHTS,
    TERM_NAMES,
    AreaTerm,
    AspectTerm,
    CostModel,
    HPWLTerm,
    OutlineTerm,
    ProximityTerm,
    ViolationTerm,
    model_for_config,
    reference_model,
    weight_overrides,
)
from repro.geometry import Module, ModuleSet, Net
from repro.seqpair.placer import PlacerConfig
from repro.slicing import SlicingPlacerConfig


def _modules():
    return ModuleSet.of(
        [Module.hard("a", 2.0, 4.0), Module.hard("b", 3.0, 3.0)]
    )


def _coords():
    return {"a": (0.0, 0.0, 2.0, 4.0), "b": (2.0, 0.0, 5.0, 3.0)}


class TestModelComposition:
    def test_per_placer_term_sets(self):
        mods = _modules()
        nets = (Net("n", ("a", "b")),)
        bstar = model_for_config(mods, nets, (), BStarPlacerConfig())
        assert list(bstar.weights) == ["area", "wirelength", "aspect", "proximity"]
        seqpair = model_for_config(mods, nets, (), PlacerConfig())
        assert list(seqpair.weights) == ["area", "wirelength", "aspect"]
        slicing = model_for_config(mods, nets, (), SlicingPlacerConfig())
        assert list(slicing.weights) == ["area", "wirelength"]

    def test_weights_follow_config(self):
        mods = _modules()
        config = BStarPlacerConfig(area_weight=2.0, wirelength_weight=0.25)
        model = model_for_config(mods, (), (), config)
        assert model.weights["area"] == 2.0
        assert model.weights["wirelength"] == 0.25
        # defaults come from the canonical table
        assert BStarPlacerConfig().area_weight == DEFAULT_WEIGHTS["area"]
        assert PlacerConfig().wirelength_weight == DEFAULT_WEIGHTS["wirelength"]

    def test_duplicate_terms_rejected(self):
        scale = 1.0
        with pytest.raises(ValueError, match="duplicate"):
            CostModel((AreaTerm(1.0, scale), AreaTerm(1.0, scale)))

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError, match="at least one term"):
            CostModel(())

    def test_term_lookup_and_describe(self):
        model = model_for_config(_modules(), (), (), BStarPlacerConfig())
        assert model.term("area").name == "area"
        with pytest.raises(KeyError, match="no cost term 'bogus'"):
            model.term("bogus")
        description = model.describe()
        for name in model.weights:
            assert name in description

    def test_breakdown_sums_to_total(self):
        mods = _modules()
        nets = (Net("n", ("a", "b")),)
        model = model_for_config(mods, nets, (), BStarPlacerConfig())
        coords = _coords()
        breakdown = model.breakdown(coords)
        assert set(breakdown) == set(model.weights)
        assert sum(breakdown.values()) == pytest.approx(model.evaluate(coords))

    def test_tracks_wirelength_gate(self):
        mods = _modules()
        nets = (Net("n", ("a", "b")),)
        assert model_for_config(mods, nets, (), BStarPlacerConfig()).tracks_wirelength
        assert not model_for_config(mods, (), (), BStarPlacerConfig()).tracks_wirelength
        assert not model_for_config(
            mods, nets, (), BStarPlacerConfig(wirelength_weight=0.0)
        ).tracks_wirelength


class TestOutlineTerm:
    def test_zero_inside_outline(self):
        model = CostModel((OutlineTerm(1.0, (10.0, 10.0)),))
        assert model.evaluate(_coords()) == 0.0

    def test_penalizes_overflow_per_axis(self):
        term = OutlineTerm(2.0, (4.0, 2.0))
        model = CostModel((term,))
        # bounding is 5 x 4: overflow 1/4 in x, 2/2 in y
        assert model.evaluate(_coords()) == pytest.approx(2.0 * (1.0 / 4.0 + 1.0))

    def test_rejects_degenerate_outline(self):
        with pytest.raises(ValueError, match="positive"):
            OutlineTerm(1.0, (0.0, 5.0))


class TestViolationTerm:
    def test_requires_placement_tier(self):
        circuit = fig2_design()
        model = reference_model(circuit)
        with pytest.raises(ValueError, match="Placement"):
            model.evaluate({"a": (0.0, 0.0, 1.0, 1.0)})

    def test_charges_per_violation(self):
        circuit = fig2_design()
        term = ViolationTerm(2.0, circuit.constraints())
        # a placement that satisfies nothing: all modules stacked apart
        from repro.geometry import PlacedModule, Placement, Rect

        placed = []
        x = 0.0
        for m in circuit.modules():
            w, h = m.footprint(0)
            placed.append(PlacedModule(m, Rect(x, 0.0, x + w, h)))
            x += w + 50.0
        placement = Placement.of(placed)
        n = len(circuit.constraints().violations(placement))
        assert n > 0
        assert term.contribution({}, placement=placement) == 2.0 * n


class TestProximityAccumulation:
    def test_per_group_additions_not_product(self):
        """Two unsatisfied groups add weight twice (legacy order), and
        the accumulate path is exactly sequential addition."""
        from repro.circuit import ProximityGroup

        groups = (
            ProximityGroup("g1", ("a", "b")),
            ProximityGroup("g2", ("a", "b")),
        )
        term = ProximityTerm(0.3, groups)
        far = {"a": (0.0, 0.0, 1.0, 1.0), "b": (50.0, 50.0, 51.0, 51.0)}
        assert term.contribution(far) == 0.0 + 0.3 + 0.3
        near = _coords()
        assert term.contribution(near) == 0.0


class TestWeightOverrides:
    def test_translates_terms_to_config_fields(self):
        out = weight_overrides({"area": 2.0, "wirelength": 1.0}, BStarPlacerConfig)
        assert out == {"area_weight": 2.0, "wirelength_weight": 1.0}

    def test_unknown_term_rejected(self):
        with pytest.raises(ValueError, match="unknown cost term 'blobs'"):
            weight_overrides({"blobs": 1.0}, BStarPlacerConfig)
        assert "blobs" not in TERM_NAMES

    def test_unsupported_term_lists_supported(self):
        with pytest.raises(ValueError, match="supports: area, wirelength"):
            weight_overrides({"aspect": 1.0}, SlicingPlacerConfig)

    def test_applies_cleanly_to_config(self):
        overrides = weight_overrides({"proximity": 5.0}, BStarPlacerConfig)
        assert BStarPlacerConfig(**overrides).proximity_weight == 5.0


class TestEvaluatorProtocol:
    def test_commit_rollback_safe_without_pending(self):
        mods = _modules()
        nets = (Net("n", ("a", "b")),)
        evaluator = model_for_config(mods, nets, (), BStarPlacerConfig()).evaluator()
        evaluator.reset(_coords())
        # legacy engines skip the caches for infeasible proposals and
        # then commit/rollback unconditionally — both must be no-ops
        evaluator.commit()
        evaluator.rollback()
        assert evaluator.propose(_coords()) == evaluator.model.evaluate(_coords())
        evaluator.rollback()

    def test_double_propose_rejected(self):
        mods = _modules()
        nets = (Net("n", ("a", "b")),)
        evaluator = model_for_config(mods, nets, (), BStarPlacerConfig()).evaluator()
        evaluator.reset(_coords())
        evaluator.propose(_coords())
        with pytest.raises(RuntimeError, match="not committed"):
            evaluator.propose(_coords())


class TestHPWLTermDetails:
    def test_wl_scale_uses_original_net_count(self):
        """Nets dropped during resolution still count toward the scale
        (legacy parity)."""
        mods = _modules()
        nets = (
            Net("n0", ("a", "b")),
            Net("ghost", ("nope", "nada")),  # resolves away
        )
        term = HPWLTerm(0.5, nets, mods.names(), 25.0)
        assert len(term.resolved) == 1
        assert term.wl_scale == max(25.0**0.5 * 2, 1e-12)

    def test_aspect_requires_positive_extent(self):
        term = AspectTerm(0.1)
        assert term.contribution({}, bounding=(0.0, 0.0, 0.0, 0.0)) == 0.0
        assert term.contribution({}, bounding=(0.0, 0.0, 4.0, 0.0)) == 0.0
        assert term.contribution({}, bounding=(0.0, 0.0, 2.0, 4.0)) == pytest.approx(
            0.1 * 1.0
        )
