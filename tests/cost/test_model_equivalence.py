"""The unified cost model is bit-identical to the legacy objectives.

Property tests (hypothesis, over the shared strategies in
``tests/strategies.py``) pinning the refactor's core contract:

* every per-placer default model computes the *same floats* as a
  replica of the legacy placer-private cost formula it replaced — over
  random module sets, nets, orientations/variants and states;
* the delta path (:class:`repro.cost.CostEvaluator` driving
  :class:`repro.cost.DeltaHPWL`) matches both a full
  :meth:`CostModel.evaluate` recompute and a raw
  :func:`repro.cost.hpwl_of` rescan across random commit/rollback
  walks;
* the reference model ranks placements exactly like the legacy
  ``_CostModel`` + violation-penalty closure did.

All equalities are exact (``==``): the cost layer must never drift by
an ulp, or annealed trajectories stop being reproducible.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bstar import BStarPlacerConfig
from repro.bstar.tree import BStarTree
from repro.circuit import fig2_design, miller_opamp
from repro.cost import (
    CostModel,
    hpwl_of,
    model_for_config,
    reference_model,
    resolve_nets,
)
from repro.geometry import Module, ModuleSet, Net, total_hpwl
from repro.perf import BStarKernel, bounding_of, placement_to_coords
from repro.seqpair.placer import PlacerConfig
from repro.slicing import SlicingPlacer, SlicingPlacerConfig
from repro.slicing.polish import PolishExpression

from tests.strategies import mixed_module_sets, seeded_rng


def _random_nets(names, rng, max_nets: int = 12):
    nets = []
    for i in range(rng.randrange(max_nets + 1)):
        k = rng.choice((2, 2, 2, 3))
        if len(names) < k:
            continue
        pins = tuple(rng.sample(list(names), k))
        nets.append(Net(f"n{i}", pins, weight=rng.choice((1.0, 1.5))))
    return tuple(nets)


def _random_coords(modules: ModuleSet, rng) -> dict:
    coords = {}
    for m in modules:
        w, h = m.footprint(0)
        x = rng.uniform(0.0, 40.0)
        y = rng.uniform(0.0, 40.0)
        coords[m.name] = (x, y, x + w, y + h)
    return coords


# -- legacy formula replicas (what the placers computed before PR 4) ----------


def _legacy_bstar_eval(modules, nets, proximity, config):
    """Replica of the deleted ``FastCostModel.evaluate`` (bstar/hbtree)."""
    from repro.cost import proximity_satisfied

    resolved = resolve_nets(nets, modules.names())
    area_scale = max(modules.total_module_area(), 1e-12)
    wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)

    def evaluate(coords):
        bx0, by0, bx1, by1 = bounding_of(coords.values())
        width = bx1 - bx0
        height = by1 - by0
        cost = config.area_weight * (width * height) / area_scale
        if nets and config.wirelength_weight:
            cost += config.wirelength_weight * hpwl_of(resolved, coords) / wl_scale
        if config.aspect_weight and width > 0 and height > 0:
            ratio = height / width
            deviation = max(ratio, 1.0 / ratio) / max(config.target_aspect, 1e-12)
            cost += config.aspect_weight * max(0.0, deviation - 1.0)
        if config.proximity_weight:
            for group in proximity:
                if not proximity_satisfied(group, coords):
                    cost += config.proximity_weight
        return cost

    return evaluate


def _legacy_seqpair_eval(modules, nets, config):
    """Replica of the deleted ``SequencePairPlacer.cost`` arithmetic."""
    resolved = resolve_nets(nets, modules.names())
    area_scale = max(modules.total_module_area(), 1e-12)
    wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)

    def evaluate(coords):
        if coords:
            min_x, min_y, max_x, max_y = bounding_of(coords.values())
        else:
            min_x = min_y = max_x = max_y = 0.0
        width = max_x - min_x
        height = max_y - min_y
        cost = config.area_weight * (width * height) / area_scale
        if nets and config.wirelength_weight:
            cost += config.wirelength_weight * hpwl_of(resolved, coords) / wl_scale
        if config.aspect_weight and width > 0:
            ratio = height / width
            deviation = max(ratio, 1.0 / ratio) / max(config.target_aspect, 1e-12)
            cost += config.aspect_weight * max(0.0, deviation - 1.0)
        return cost

    return evaluate


def _legacy_slicing_eval(modules, nets, config):
    """Replica of the deleted ``SlicingPlacer.cost`` arithmetic."""
    resolved = resolve_nets(nets, modules.names())
    area_scale = max(modules.total_module_area(), 1e-12)
    wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)

    def evaluate(area, coords):
        cost = config.area_weight * area / area_scale
        if nets and config.wirelength_weight:
            cost += config.wirelength_weight * hpwl_of(resolved, coords) / wl_scale
        return cost

    return evaluate


class TestBStarModelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(mixed_module_sets(min_size=2, max_size=10), seeded_rng())
    def test_totals_match_legacy_formula(self, modules, rng):
        nets = _random_nets(modules.names(), rng)
        config = BStarPlacerConfig(
            area_weight=rng.choice((1.0, 0.7)),
            wirelength_weight=rng.choice((0.0, 0.5, 1.2)),
            aspect_weight=rng.choice((0.0, 0.1)),
        )
        model = model_for_config(modules, nets, (), config)
        legacy = _legacy_bstar_eval(modules, nets, (), config)
        kernel = BStarKernel(modules, nets, (), config)
        tree = BStarTree.random(modules.names(), rng)
        coords = kernel.pack(tree)
        assert model.evaluate(coords) == legacy(coords)
        assert kernel.cost(tree) == legacy(coords)

    @pytest.mark.parametrize("make", [fig2_design, miller_opamp], ids=["fig2", "miller"])
    def test_constrained_circuit_matches_legacy(self, make):
        circuit = make()
        config = BStarPlacerConfig(proximity_weight=2.0)
        proximity = circuit.constraints().proximity
        modules = circuit.modules()
        model = model_for_config(modules, circuit.nets, proximity, config)
        legacy = _legacy_bstar_eval(modules, circuit.nets, proximity, config)
        rng = random.Random(7)
        for _ in range(15):
            coords = _random_coords(modules, rng)
            assert model.evaluate(coords) == legacy(coords)


class TestSeqPairModelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(mixed_module_sets(min_size=1, max_size=10), seeded_rng())
    def test_totals_match_legacy_formula(self, modules, rng):
        nets = _random_nets(modules.names(), rng)
        config = PlacerConfig(
            wirelength_weight=rng.choice((0.0, 0.5)),
            aspect_weight=rng.choice((0.0, 0.1)),
        )
        model = model_for_config(modules, nets, (), config)
        legacy = _legacy_seqpair_eval(modules, nets, config)
        coords = _random_coords(modules, rng)
        assert model.evaluate(coords) == legacy(coords)

    def test_empty_coords_cost_zero_area(self):
        modules = ModuleSet.of([Module.hard("a", 2.0, 3.0)])
        model = model_for_config(modules, (), (), PlacerConfig())
        legacy = _legacy_seqpair_eval(modules, (), PlacerConfig())
        assert model.evaluate({}) == legacy({}) == 0.0


class TestSlicingModelEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(mixed_module_sets(min_size=1, max_size=8), seeded_rng())
    def test_totals_match_legacy_formula(self, modules, rng):
        nets = _random_nets(modules.names(), rng)
        config = SlicingPlacerConfig(wirelength_weight=rng.choice((0.0, 0.4)))
        placer = SlicingPlacer(modules, nets, config)
        legacy = _legacy_slicing_eval(modules, nets, config)
        expr = PolishExpression.random(modules.names(), rng)
        best = placer._best_shape_of(expr)
        assert placer.cost(expr) == legacy(best.area, best.coords())


class TestDeltaWalkEquivalence:
    """Random commit/rollback walks: the delta path never drifts from a
    full recompute — neither the model total nor the raw HPWL rescan."""

    @settings(max_examples=40, deadline=None)
    @given(mixed_module_sets(min_size=2, max_size=10), seeded_rng())
    def test_evaluator_matches_full_recompute(self, modules, rng):
        nets = _random_nets(modules.names(), rng, max_nets=15)
        config = BStarPlacerConfig(wirelength_weight=0.8, aspect_weight=0.1)
        model = model_for_config(modules, nets, (), config)
        evaluator = model.evaluator()
        resolved = model.resolved_nets

        committed = _random_coords(modules, rng)
        assert evaluator.reset(dict(committed)) == model.evaluate(committed)

        names = modules.names()
        for _ in range(30):
            candidate = dict(committed)
            for name in rng.sample(list(names), rng.randrange(1, len(names) + 1)):
                x0, y0, x1, y1 = candidate[name]
                dx, dy = rng.uniform(-5, 5), rng.uniform(-5, 5)
                candidate[name] = (x0 + dx, y0 + dy, x1 + dx, y1 + dy)
            proposed = evaluator.propose(candidate)
            # delta total == from-scratch model total == raw hpwl path
            assert proposed == model.evaluate(candidate)
            if model.tracks_wirelength:
                assert evaluator._delta.total() == hpwl_of(resolved, candidate)
            if rng.random() < 0.5:
                evaluator.commit()
                committed = candidate
            else:
                evaluator.rollback()
            # the committed baseline is intact after either outcome
            assert evaluator.propose(dict(committed)) == model.evaluate(committed)
            evaluator.rollback()

    @settings(max_examples=30, deadline=None)
    @given(mixed_module_sets(min_size=2, max_size=8), seeded_rng())
    def test_moved_hint_equals_diff_detection(self, modules, rng):
        """Explicit ``moved`` lists and baseline diffing agree exactly."""
        nets = _random_nets(modules.names(), rng, max_nets=10)
        config = BStarPlacerConfig(wirelength_weight=0.6)
        model = model_for_config(modules, nets, (), config)
        hinted = model.evaluator()
        diffed = model.evaluator()
        committed = _random_coords(modules, rng)
        assert hinted.reset(dict(committed)) == diffed.reset(dict(committed))
        names = list(modules.names())
        for _ in range(20):
            candidate = dict(committed)
            moved = rng.sample(names, rng.randrange(1, len(names) + 1))
            for name in moved:
                x0, y0, x1, y1 = candidate[name]
                dx = rng.uniform(-3, 3)
                candidate[name] = (x0 + dx, y0, x1 + dx, y1)
            a = hinted.propose(dict(candidate), moved=moved)
            b = diffed.propose(dict(candidate))
            assert a == b == model.evaluate(candidate)
            if rng.random() < 0.5:
                hinted.commit()
                diffed.commit()
                committed = candidate
            else:
                hinted.rollback()
                diffed.rollback()


class TestReferenceModelEquivalence:
    """The portfolio yardstick equals the legacy closure bit for bit."""

    def _legacy_reference(self, circuit):
        modules = circuit.modules()
        nets = circuit.nets
        config = BStarPlacerConfig()
        area_scale = max(modules.total_module_area(), 1e-12)
        wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)
        constraints = circuit.constraints()

        def cost(placement):
            bb = placement.bounding_box()
            total = config.area_weight * bb.area / area_scale
            if nets and config.wirelength_weight:
                total += (
                    config.wirelength_weight * total_hpwl(nets, placement) / wl_scale
                )
            if config.aspect_weight and bb.width > 0 and bb.height > 0:
                ratio = bb.height / bb.width
                deviation = max(ratio, 1.0 / ratio) / max(config.target_aspect, 1e-12)
                total += config.aspect_weight * max(0.0, deviation - 1.0)
            return total + 2.0 * len(constraints.violations(placement))

        return cost

    @pytest.mark.parametrize("make", [fig2_design, miller_opamp], ids=["fig2", "miller"])
    @pytest.mark.parametrize("engine", ["hbtree", "slicing"])
    def test_matches_legacy_reference(self, make, engine):
        circuit = make()
        legacy = self._legacy_reference(circuit)
        model = reference_model(circuit)
        if engine == "hbtree":
            from repro.bstar import HierarchicalPlacer

            placement = HierarchicalPlacer(
                circuit, BStarPlacerConfig(seed=3, alpha=0.7, steps_per_epoch=10)
            ).run().placement
        else:
            placement = SlicingPlacer(
                circuit.modules(),
                circuit.nets,
                SlicingPlacerConfig(seed=3, alpha=0.7, steps_per_epoch=10),
            ).run().placement
        assert model.evaluate_placement(placement) == legacy(placement)
        breakdown = model.breakdown_placement(placement)
        assert set(breakdown) == {"area", "wirelength", "aspect", "violations"}

    def test_placement_tier_equals_flat_tier(self):
        """evaluate_placement flattens to the very same floats."""
        circuit = fig2_design()
        config = BStarPlacerConfig()
        model = model_for_config(
            circuit.modules(), circuit.nets, circuit.constraints().proximity, config
        )
        from repro.bstar import HierarchicalPlacer

        placement = HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=1, alpha=0.7, steps_per_epoch=10)
        ).run().placement
        assert model.evaluate_placement(placement) == model.evaluate(
            placement_to_coords(placement)
        )
