"""Shared pytest fixtures."""

from __future__ import annotations

import random

import pytest

from repro.circuit import fig1_modules, fig2_design, miller_opamp
from repro.geometry import Module, ModuleSet


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def small_modules() -> ModuleSet:
    """Five hard modules with mixed sizes."""
    return ModuleSet.of(
        [
            Module.hard("a", 4.0, 3.0),
            Module.hard("b", 2.0, 5.0),
            Module.hard("c", 6.0, 2.0),
            Module.hard("d", 3.0, 3.0),
            Module.hard("e", 1.0, 7.0),
        ]
    )


@pytest.fixture
def fig1():
    return fig1_modules()


@pytest.fixture
def miller():
    return miller_opamp()


@pytest.fixture
def fig2():
    return fig2_design()
