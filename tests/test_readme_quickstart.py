"""The README quickstart must actually work as written."""

from repro.analysis import render_placement
from repro.circuit import miller_opamp
from repro.seqpair import PlacerConfig, SequencePairPlacer


def test_readme_quickstart_runs():
    circuit = miller_opamp()
    placer = SequencePairPlacer.for_circuit(circuit, PlacerConfig(seed=7))
    result = placer.run()

    art = render_placement(result.placement)
    assert art.strip()
    assert result.placement.area_usage() >= 1.0
    assert circuit.constraints().violations(result.placement) == []
