"""Tests for the Circuit container."""

import pytest

from repro.circuit import (
    Circuit,
    ConstraintSet,
    HierarchyNode,
    ProximityGroup,
    SymmetryGroup,
)
from repro.geometry import Module, Net


def simple_hierarchy():
    return HierarchyNode(
        "top",
        modules=[Module.hard("a", 2, 2), Module.hard("b", 2, 2)],
        children=[
            HierarchyNode(
                "sub",
                modules=[Module.hard("c", 3, 1), Module.hard("d", 3, 1)],
                constraint=SymmetryGroup("s", pairs=(("c", "d"),)),
            )
        ],
    )


class TestCircuit:
    def test_modules_view(self):
        c = Circuit("t", simple_hierarchy())
        assert set(c.modules().names()) == {"a", "b", "c", "d"}
        assert c.n_modules == 4
        assert c.module("a").width == 2

    def test_constraints_from_hierarchy(self):
        c = Circuit("t", simple_hierarchy())
        cs = c.constraints()
        assert [g.name for g in cs.symmetry] == ["s"]

    def test_extra_constraints_merged(self):
        extra = ConstraintSet(proximity=(ProximityGroup("p", ("a", "b")),))
        c = Circuit("t", simple_hierarchy(), extra_constraints=extra)
        cs = c.constraints()
        assert len(cs.symmetry) == 1
        assert len(cs.proximity) == 1

    def test_net_validation(self):
        with pytest.raises(ValueError):
            Circuit("t", simple_hierarchy(), nets=(Net("n", ("a", "ghost")),))

    def test_extra_constraint_validation(self):
        extra = ConstraintSet(proximity=(ProximityGroup("p", ("ghost",)),))
        with pytest.raises(ValueError):
            Circuit("t", simple_hierarchy(), extra_constraints=extra)

    def test_total_module_area(self):
        c = Circuit("t", simple_hierarchy())
        assert c.total_module_area() == pytest.approx(4 + 4 + 3 + 3)

    def test_summary_mentions_counts(self):
        c = Circuit("t", simple_hierarchy())
        s = c.summary()
        assert "4 modules" in s
        assert "1 symmetry" in s
