"""Tests for the device model."""

import pytest

from repro.circuit import Device, DeviceType, matched_pair


class TestDeviceValidation:
    def test_mos_needs_dimensions(self):
        with pytest.raises(ValueError):
            Device("m", DeviceType.NMOS, width=0.0, length=0.5)
        with pytest.raises(ValueError):
            Device("m", DeviceType.NMOS, width=10.0, length=0.0)

    def test_mos_needs_fingers(self):
        with pytest.raises(ValueError):
            Device("m", DeviceType.NMOS, width=10.0, length=0.5, fingers=0)

    def test_passive_needs_value(self):
        with pytest.raises(ValueError):
            Device("c", DeviceType.CAPACITOR, value=0.0)

    def test_is_mos(self):
        assert Device("m", DeviceType.PMOS, width=1, length=1).is_mos
        assert not Device("c", DeviceType.CAPACITOR, value=100.0).is_mos


class TestFootprints:
    def test_cap_is_square(self):
        w, h = Device("c", DeviceType.CAPACITOR, value=400.0).footprint()
        assert w == pytest.approx(h)
        assert w * h == pytest.approx(400.0)  # density 1 fF/um^2

    def test_mos_folding_tradeoff(self):
        dev = Device("m", DeviceType.NMOS, width=40.0, length=0.5)
        w1, h1 = dev.footprint(1)
        w4, h4 = dev.footprint(4)
        assert w4 > w1       # more fingers -> wider
        assert h4 < h1       # ... but shorter

    def test_mos_footprint_positive(self):
        dev = Device("m", DeviceType.PMOS, width=5.0, length=1.0)
        w, h = dev.footprint()
        assert w > 0 and h > 0

    def test_resistor_footprint(self):
        w, h = Device("r", DeviceType.RESISTOR, value=5000.0).footprint()
        assert w > 0 and h > 0

    def test_invalid_fingers(self):
        dev = Device("m", DeviceType.NMOS, width=10.0, length=0.5)
        with pytest.raises(ValueError):
            dev.footprint(0)


class TestFoldingVariants:
    def test_distinct_variants(self):
        dev = Device("m", DeviceType.NMOS, width=32.0, length=0.5)
        variants = dev.folding_variants(max_fingers=8)
        assert len(variants) >= 3
        sizes = {(v.width, v.height) for v in variants}
        assert len(sizes) == len(variants)

    def test_strip_width_limit(self):
        # W = 2, L = 1: folding beyond nf=2 would make strips shorter than L
        dev = Device("m", DeviceType.NMOS, width=2.0, length=1.0)
        variants = dev.folding_variants(max_fingers=8)
        assert all(int(v.tag.split("=")[1]) <= 2 for v in variants)

    def test_passive_single_variant(self):
        dev = Device("c", DeviceType.CAPACITOR, value=100.0)
        assert len(dev.folding_variants()) == 1


class TestToModule:
    def test_hard_module(self):
        dev = Device("m", DeviceType.NMOS, width=10.0, length=0.5, fingers=2)
        m = dev.to_module()
        assert m.is_hard
        assert m.name == "m"
        assert m.variants[0].tag == "nf=2"

    def test_soft_module(self):
        dev = Device("m", DeviceType.NMOS, width=32.0, length=0.5)
        m = dev.to_module(soft=True)
        assert len(m.variants) > 1

    def test_rotatable_flag(self):
        dev = Device("m", DeviceType.NMOS, width=10.0, length=0.5)
        assert not dev.to_module(rotatable=False).rotatable


class TestMatchedPair:
    def test_names_and_matching(self):
        a, b = matched_pair("mp", DeviceType.PMOS, 20.0, 0.5, fingers=2)
        assert (a.name, b.name) == ("mpa", "mpb")
        assert a.footprint() == b.footprint()
