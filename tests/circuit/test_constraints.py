"""Tests for the layout constraint model."""

import pytest

from repro.circuit import (
    CommonCentroidGroup,
    ConstraintSet,
    ProximityGroup,
    SymmetryGroup,
    symmetry_group_of_pairs,
)
from repro.geometry import Module, PlacedModule, Placement, Rect


def place(name, x, y, w=2.0, h=2.0):
    return PlacedModule(Module.hard(name, w, h), Rect.from_size(x, y, w, h))


class TestSymmetryGroup:
    def test_members_and_sym(self):
        g = SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("s",))
        assert set(g.members()) == {"a", "b", "s"}
        assert g.sym("a") == "b"
        assert g.sym("b") == "a"
        assert g.sym("s") == "s"
        assert g.size == 3

    def test_unknown_member_raises(self):
        g = SymmetryGroup("g", pairs=(("a", "b"),))
        with pytest.raises(KeyError):
            g.sym("zz")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SymmetryGroup("g", pairs=(("a", "a"),))
        with pytest.raises(ValueError):
            SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("a",))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SymmetryGroup("g")

    def test_perfectly_symmetric_placement(self):
        p = Placement.of(
            [place("a", 0, 0), place("b", 8, 0), place("s", 4, 5)]
        )
        g = SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("s",))
        assert g.axis_of(p) == pytest.approx(5.0)
        assert g.symmetry_error(p) == pytest.approx(0.0)
        assert g.is_satisfied(p)

    def test_x_asymmetry_detected(self):
        p = Placement.of([place("a", 0, 0), place("b", 9, 0), place("s", 4, 5)])
        g = SymmetryGroup("g", pairs=(("a", "b"),), self_symmetric=("s",))
        assert g.symmetry_error(p) > 0
        assert not g.is_satisfied(p)

    def test_y_mismatch_detected(self):
        p = Placement.of([place("a", 0, 0), place("b", 8, 1)])
        g = SymmetryGroup("g", pairs=(("a", "b"),))
        assert not g.is_satisfied(p)

    def test_unplaced_group_raises(self):
        g = SymmetryGroup("g", pairs=(("a", "b"),))
        with pytest.raises(ValueError):
            g.axis_of(Placement.empty())

    def test_convenience_constructor(self):
        g = symmetry_group_of_pairs("g", ("a", "b"), selfsym=["s"])
        assert g.size == 3


class TestCommonCentroidGroup:
    def group(self):
        return CommonCentroidGroup(
            "cc", units=(("A", ("A1", "A2")), ("B", ("B1", "B2")))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CommonCentroidGroup("cc", units=(("A", ("A1",)),))  # single device
        with pytest.raises(ValueError):
            CommonCentroidGroup("cc", units=(("A", ("x",)), ("B", ("x",))))  # reuse
        with pytest.raises(ValueError):
            CommonCentroidGroup("cc", units=(("A", ()), ("B", ("b",))))  # empty

    def test_abba_pattern_satisfies(self):
        # A B B A in one row: both centroids at the middle.
        p = Placement.of(
            [place("A1", 0, 0), place("B1", 2, 0), place("B2", 4, 0), place("A2", 6, 0)]
        )
        g = self.group()
        assert g.centroid_error(p) == pytest.approx(0.0)
        assert g.is_satisfied(p)

    def test_aabb_pattern_fails(self):
        p = Placement.of(
            [place("A1", 0, 0), place("A2", 2, 0), place("B1", 4, 0), place("B2", 6, 0)]
        )
        assert not self.group().is_satisfied(p)

    def test_centroids_reported(self):
        p = Placement.of(
            [place("A1", 0, 0), place("B1", 2, 0), place("B2", 4, 0), place("A2", 6, 0)]
        )
        cents = self.group().centroids(p)
        assert cents["A"] == pytest.approx((4.0, 1.0))
        assert cents["B"] == pytest.approx((4.0, 1.0))


class TestProximityGroup:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProximityGroup("p", ())
        with pytest.raises(ValueError):
            ProximityGroup("p", ("a", "a"))

    def test_touching_cluster_connected(self):
        p = Placement.of([place("a", 0, 0), place("b", 2, 0), place("c", 2, 2)])
        assert ProximityGroup("p", ("a", "b", "c")).is_satisfied(p)

    def test_split_cluster_detected(self):
        p = Placement.of([place("a", 0, 0), place("b", 10, 0)])
        assert not ProximityGroup("p", ("a", "b")).is_satisfied(p)

    def test_margin_bridges_gaps(self):
        p = Placement.of([place("a", 0, 0), place("b", 3, 0)])  # 1 um gap
        assert not ProximityGroup("p", ("a", "b")).is_satisfied(p)
        assert ProximityGroup("p", ("a", "b"), margin=1.0).is_satisfied(p)

    def test_single_member_trivially_connected(self):
        p = Placement.of([place("a", 0, 0)])
        assert ProximityGroup("p", ("a",)).is_satisfied(p)

    def test_chain_connectivity(self):
        # a-b touch, b-c touch, a-c do not: still one cluster.
        p = Placement.of([place("a", 0, 0), place("b", 2, 0), place("c", 4, 0)])
        assert ProximityGroup("p", ("a", "b", "c")).is_satisfied(p)


class TestConstraintSet:
    def test_violations(self):
        g = SymmetryGroup("sym", pairs=(("a", "b"),))
        prox = ProximityGroup("prox", ("a", "b"))
        cs = ConstraintSet(symmetry=(g,), proximity=(prox,))
        good = Placement.of([place("a", 0, 0), place("b", 2, 0)])
        bad = Placement.of([place("a", 0, 0), place("b", 7, 3)])
        assert cs.violations(good) == []
        assert set(cs.violations(bad)) == {"sym", "prox"}

    def test_duplicate_names_rejected(self):
        g1 = SymmetryGroup("x", pairs=(("a", "b"),))
        g2 = ProximityGroup("x", ("c",))
        with pytest.raises(ValueError):
            ConstraintSet(symmetry=(g1,), proximity=(g2,))

    def test_constrained_modules(self):
        cs = ConstraintSet(
            symmetry=(SymmetryGroup("s", pairs=(("a", "b"),)),),
            proximity=(ProximityGroup("p", ("c",)),),
        )
        assert cs.constrained_modules() == frozenset({"a", "b", "c"})

    def test_merged_with(self):
        cs1 = ConstraintSet(symmetry=(SymmetryGroup("s1", pairs=(("a", "b"),)),))
        cs2 = ConstraintSet(proximity=(ProximityGroup("p1", ("c",)),))
        merged = cs1.merged_with(cs2)
        assert len(merged.all()) == 2
