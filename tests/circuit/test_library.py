"""Tests for the benchmark circuit library."""

import pytest

from repro.circuit import (
    TABLE1_MODULE_COUNTS,
    fig1_modules,
    fig1_sequence_pair,
    fig2_design,
    miller_opamp,
    simple_testcase,
    synthesize_circuit,
    table1_circuit,
    table1_circuits,
)


class TestFig1:
    def test_modules_and_group(self):
        modules, group = fig1_modules()
        assert set(modules.names()) == set("ABCDEFG")
        assert group.pairs == (("C", "D"), ("B", "G"))
        assert group.self_symmetric == ("A", "F")

    def test_pairs_matched(self):
        modules, group = fig1_modules()
        for a, b in group.pairs:
            assert modules[a].footprint() == modules[b].footprint()

    def test_sequence_pair_matches_paper(self):
        alpha, beta = fig1_sequence_pair()
        assert "".join(alpha) == "EBAFCDG"
        assert "".join(beta) == "EBCDFAG"


class TestMillerOpamp:
    def test_structure(self):
        c = miller_opamp()
        assert c.n_modules == 9
        assert {n.name for n in c.hierarchy.walk()} == {
            "OPAMP", "CORE", "DP", "CM1", "CM2",
        }
        # Fig. 6 basic module sets
        assert {m.name for m in c.hierarchy.find("DP").modules} == {"P1", "P2"}
        assert {m.name for m in c.hierarchy.find("CM2").modules} == {"P5", "P6", "P7"}

    def test_constraints(self):
        c = miller_opamp()
        cs = c.constraints()
        assert len(cs.symmetry) == 3
        names = {g.name for g in cs.symmetry}
        assert names == {"sym-DP", "sym-CM1", "sym-CM2"}

    def test_nets_reference_modules(self):
        c = miller_opamp()
        names = set(c.modules().names())
        for net in c.nets:
            assert set(net.pins) <= names


class TestFig2:
    def test_constraint_mix(self):
        c = fig2_design()
        cs = c.constraints()
        assert len(cs.symmetry) == 1
        assert len(cs.common_centroid) == 2
        assert len(cs.proximity) == 1

    def test_valid(self):
        c = fig2_design()
        c.hierarchy.validate()


class TestTable1Circuits:
    @pytest.mark.parametrize("key,count", sorted(TABLE1_MODULE_COUNTS.items()))
    def test_module_counts_match_paper(self, key, count):
        assert table1_circuit(key).n_modules == count

    def test_all_six(self):
        assert len(table1_circuits()) == 6

    def test_deterministic(self):
        a = table1_circuit("folded_cascode")
        b = table1_circuit("folded_cascode")
        assert a.modules().names() == b.modules().names()
        for m1, m2 in zip(a.modules(), b.modules()):
            assert m1.variants == m2.variants

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            table1_circuit("nope")

    def test_symmetry_pairs_are_matched(self):
        c = table1_circuit("lnamixbias")
        modules = c.modules()
        for group in c.constraints().symmetry:
            for a, b in group.pairs:
                assert modules[a].footprint() == modules[b].footprint()

    def test_size_heterogeneity(self):
        # Analog circuits mix large caps with small transistors (section I).
        c = table1_circuit("biasynth")
        areas = [m.area for m in c.modules()]
        assert max(areas) / min(areas) > 10.0


class TestSynthesizer:
    @pytest.mark.parametrize("n", [1, 2, 5, 17])
    def test_exact_module_count(self, n):
        assert synthesize_circuit("t", n, seed=3).n_modules == n

    def test_hierarchy_valid(self):
        c = synthesize_circuit("t", 30, seed=9)
        c.hierarchy.validate()

    def test_simple_testcase(self):
        c = simple_testcase(8, seed=1)
        assert c.n_modules == 8
