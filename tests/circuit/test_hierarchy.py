"""Tests for the design hierarchy tree."""

import pytest

from repro.circuit import (
    ConstraintKind,
    HierarchyNode,
    ProximityGroup,
    SymmetryGroup,
    cluster_by,
)
from repro.geometry import Module


def mods(*names):
    return [Module.hard(n, 2.0, 2.0) for n in names]


@pytest.fixture
def tree():
    dp = HierarchyNode(
        "DP", modules=mods("p1", "p2"),
        constraint=SymmetryGroup("sym", pairs=(("p1", "p2"),)),
    )
    cm = HierarchyNode("CM", modules=mods("n1", "n2"))
    core = HierarchyNode("CORE", children=[dp, cm])
    return HierarchyNode("TOP", modules=mods("c1"), children=[core])


class TestStructure:
    def test_walk_preorder(self, tree):
        assert [n.name for n in tree.walk()] == ["TOP", "CORE", "DP", "CM"]

    def test_leaves(self, tree):
        assert {n.name for n in tree.leaves()} == {"DP", "CM"}

    def test_all_modules(self, tree):
        assert [m.name for m in tree.all_modules()] == ["c1", "p1", "p2", "n1", "n2"]

    def test_module_set(self, tree):
        assert len(tree.module_set()) == 5

    def test_basic_module_sets(self, tree):
        assert {n.name for n in tree.basic_module_sets()} == {"TOP", "DP", "CM"}

    def test_depth(self, tree):
        assert tree.depth() == 3
        assert HierarchyNode("leaf", modules=mods("x")).depth() == 1

    def test_find(self, tree):
        assert tree.find("DP").constraint is not None
        with pytest.raises(KeyError):
            tree.find("nope")

    def test_constraint_kind(self, tree):
        assert tree.find("DP").constraint_kind is ConstraintKind.SYMMETRY
        assert tree.find("CM").constraint_kind is ConstraintKind.NONE

    def test_constraints_collected(self, tree):
        assert [c.name for c in tree.constraints()] == ["sym"]


class TestValidation:
    def test_valid_tree(self, tree):
        tree.validate()

    def test_duplicate_node_names(self):
        t = HierarchyNode("X", children=[HierarchyNode("X", modules=mods("a"))])
        with pytest.raises(ValueError):
            t.validate()

    def test_duplicate_module_names(self):
        t = HierarchyNode(
            "T",
            children=[
                HierarchyNode("A", modules=mods("m")),
                HierarchyNode("B", modules=mods("m")),
            ],
        )
        with pytest.raises(ValueError):
            t.validate()

    def test_constraint_referencing_outside_subtree(self):
        bad = HierarchyNode(
            "A",
            modules=mods("a1"),
            constraint=ProximityGroup("p", ("a1", "elsewhere")),
        )
        t = HierarchyNode("T", children=[bad])
        with pytest.raises(ValueError):
            t.validate()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            HierarchyNode("")


class TestClusterBy:
    def test_groups_by_key(self):
        modules = mods("nmos1", "nmos2", "pmos1", "cap1")
        root = cluster_by(modules, key=lambda m: m.name[:4], prefix="vc")
        root.validate()
        # nmos1/nmos2 grouped; singletons stay at top
        assert {n.name for n in root.children} == {"vc-nmos"}
        assert {m.name for m in root.modules} == {"pmos1", "cap1"}

    def test_all_modules_preserved(self):
        modules = mods("a1", "a2", "b1", "b2", "c1")
        root = cluster_by(modules, key=lambda m: m.name[0])
        assert len(root.all_modules()) == 5
