"""Tests for nets and wirelength."""

import pytest

from repro.geometry import (
    Module,
    Net,
    PlacedModule,
    Placement,
    Rect,
    clique_nets_from_pairs,
    total_hpwl,
)


def place(name, x, y, w=2.0, h=2.0):
    return PlacedModule(Module.hard(name, w, h), Rect.from_size(x, y, w, h))


@pytest.fixture
def grid_placement():
    return Placement.of(
        [place("a", 0, 0), place("b", 10, 0), place("c", 0, 10), place("d", 10, 10)]
    )


class TestNet:
    def test_requires_two_pins(self):
        with pytest.raises(ValueError):
            Net("n", ("a",))

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            Net("n", ("a", "b"), weight=-1.0)

    def test_two_pin_hpwl(self, grid_placement):
        # centers at (1,1) and (11,1): HPWL = 10 + 0
        assert Net("n", ("a", "b")).hpwl(grid_placement) == pytest.approx(10.0)

    def test_multi_pin_hpwl(self, grid_placement):
        # centers span x in [1, 11], y in [1, 11]
        assert Net("n", ("a", "b", "c", "d")).hpwl(grid_placement) == pytest.approx(20.0)

    def test_unplaced_pins_ignored(self, grid_placement):
        net = Net("n", ("a", "b", "ghost"))
        assert net.hpwl(grid_placement) == pytest.approx(10.0)

    def test_single_placed_pin_is_zero(self, grid_placement):
        assert Net("n", ("a", "ghost")).hpwl(grid_placement) == 0.0


class TestTotalHpwl:
    def test_weighted_sum(self, grid_placement):
        nets = [Net("n1", ("a", "b"), weight=2.0), Net("n2", ("a", "c"), weight=1.0)]
        assert total_hpwl(nets, grid_placement) == pytest.approx(2 * 10 + 10)

    def test_empty(self, grid_placement):
        assert total_hpwl([], grid_placement) == 0.0

    def test_clique_helper(self):
        nets = clique_nets_from_pairs([("a", "b"), ("c", "d")])
        assert len(nets) == 2
        assert nets[0].pins == ("a", "b")
        assert nets[1].name == "n1"
