"""Tests for rectilinear union geometry (wells and guard rings)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, union_area, union_perimeter, well_report

coords = st.floats(0.0, 50.0)
sizes = st.floats(0.5, 20.0)


@st.composite
def rect_lists(draw, max_rects=6):
    n = draw(st.integers(1, max_rects))
    return [
        Rect.from_size(draw(coords), draw(coords), draw(sizes), draw(sizes))
        for _ in range(n)
    ]


class TestUnionArea:
    def test_single_rect(self):
        assert union_area([Rect(0, 0, 4, 3)]) == pytest.approx(12.0)

    def test_disjoint_sum(self):
        assert union_area([Rect(0, 0, 2, 2), Rect(5, 5, 7, 7)]) == pytest.approx(8.0)

    def test_overlap_counted_once(self):
        assert union_area([Rect(0, 0, 4, 4), Rect(2, 0, 6, 4)]) == pytest.approx(24.0)

    def test_contained_rect_free(self):
        assert union_area([Rect(0, 0, 10, 10), Rect(2, 2, 5, 5)]) == pytest.approx(100.0)

    def test_empty(self):
        assert union_area([]) == 0.0
        assert union_area([Rect(0, 0, 0, 5)]) == 0.0

    @given(rect_lists())
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, rects):
        area = union_area(rects)
        assert area <= sum(r.area for r in rects) + 1e-6
        assert area >= max(r.area for r in rects) - 1e-6

    @given(rect_lists())
    @settings(max_examples=40, deadline=None)
    def test_monotone_under_union(self, rects):
        assert union_area(rects) >= union_area(rects[:-1]) - 1e-9 if len(rects) > 1 else True


class TestUnionPerimeter:
    def test_single_rect(self):
        assert union_perimeter([Rect(0, 0, 4, 3)]) == pytest.approx(14.0)

    def test_two_abutting_merge(self):
        # 4x2 total from two 2x2 squares side by side
        p = union_perimeter([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)])
        assert p == pytest.approx(12.0)

    def test_l_shape(self):
        # L from 4x2 bottom and 2x4 left: outline 4+2+2+2+2+4 = 16
        p = union_perimeter([Rect(0, 0, 4, 2), Rect(0, 0, 2, 4)])
        assert p == pytest.approx(16.0)

    def test_disjoint_adds(self):
        p = union_perimeter([Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)])
        assert p == pytest.approx(16.0)

    @given(rect_lists(max_rects=4))
    @settings(max_examples=40, deadline=None)
    def test_at_most_sum_of_perimeters(self, rects):
        total = sum(2 * (r.width + r.height) for r in rects)
        assert union_perimeter(rects) <= total + 1e-6


class TestWellReport:
    def test_tight_cluster_saves_area(self):
        """Fig. 3c: devices sharing a well beat separate wells."""
        cluster = [Rect(0, 0, 3, 3), Rect(3, 0, 6, 3), Rect(0, 3, 3, 6)]
        report = well_report(cluster, well_margin=1.0, ring_width=0.5)
        assert report.sharing_saving > 0.0
        assert report.guard_ring_area > 0.0

    def test_far_apart_no_saving(self):
        spread = [Rect(0, 0, 2, 2), Rect(50, 50, 52, 52)]
        report = well_report(spread, well_margin=1.0)
        assert report.sharing_saving == pytest.approx(0.0)

    def test_saving_grows_with_proximity(self):
        tight = well_report([Rect(0, 0, 3, 3), Rect(3, 0, 6, 3)], well_margin=1.0)
        loose = well_report([Rect(0, 0, 3, 3), Rect(8, 0, 11, 3)], well_margin=1.0)
        assert tight.sharing_saving > loose.sharing_saving

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            well_report([Rect(0, 0, 1, 1)], well_margin=-1.0)
