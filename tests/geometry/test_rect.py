"""Unit and property tests for rectangles and points."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect, any_overlap, total_area

coords = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
sizes = st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x, y = draw(coords), draw(coords)
    w, h = draw(sizes), draw(sizes)
    return Rect.from_size(x, y, w, h)


class TestPoint:
    def test_translated(self):
        assert Point(1.0, 2.0).translated(3.0, -1.0) == Point(4.0, 1.0)

    def test_mirror_x_twice_is_identity(self):
        p = Point(3.0, 4.0)
        assert p.mirrored_x(10.0).mirrored_x(10.0) == p

    def test_mirror_y(self):
        assert Point(3.0, 4.0).mirrored_y(0.0) == Point(3.0, -4.0)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)


class TestRectBasics:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 1.0, 1.0, 0.0)

    def test_from_size(self):
        r = Rect.from_size(1.0, 2.0, 3.0, 4.0)
        assert (r.x0, r.y0, r.x1, r.y1) == (1.0, 2.0, 4.0, 6.0)
        assert r.width == 3.0
        assert r.height == 4.0
        assert r.area == 12.0

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2.0, 1.0)

    def test_aspect_ratio(self):
        assert Rect(0, 0, 4, 2).aspect_ratio == pytest.approx(0.5)
        assert Rect(0, 0, 0, 2).aspect_ratio == math.inf

    def test_bounding(self):
        bb = Rect.bounding([Rect(0, 0, 1, 1), Rect(5, -2, 6, 3)])
        assert bb == Rect(0, -2, 6, 3)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_corners_ccw(self):
        corners = list(Rect(0, 0, 2, 1).corners())
        assert corners == [Point(0, 0), Point(2, 0), Point(2, 1), Point(0, 1)]


class TestRectPredicates:
    def test_overlap_strict_vs_touching(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 4, 2)  # shares an edge
        assert not a.overlaps(b)
        assert a.overlaps(b, strict=False)

    def test_overlap_positive(self):
        assert Rect(0, 0, 3, 3).overlaps(Rect(2, 2, 5, 5))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).overlaps(Rect(5, 5, 6, 6), strict=False)

    def test_contains_point_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(2.1, 1))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 5, 5))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(5, 5, 11, 6))


class TestRectTransforms:
    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)

    def test_moved_to(self):
        assert Rect(5, 5, 7, 8).moved_to(0, 0) == Rect(0, 0, 2, 3)

    def test_mirror_x_preserves_size(self):
        r = Rect(1, 2, 4, 7)
        m = r.mirrored_x(10.0)
        assert m.width == r.width
        assert m.height == r.height
        assert m.y0 == r.y0

    def test_mirror_x_geometry(self):
        # [1, 4] mirrored about x=5 becomes [6, 9]
        assert Rect(1, 0, 4, 1).mirrored_x(5.0) == Rect(6, 0, 9, 1)

    def test_mirror_y_geometry(self):
        assert Rect(0, 1, 1, 4).mirrored_y(5.0) == Rect(0, 6, 1, 9)

    def test_intersection(self):
        assert Rect(0, 0, 3, 3).intersection(Rect(2, 2, 5, 5)) == Rect(2, 2, 3, 3)
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_inflated(self):
        assert Rect(1, 1, 2, 2).inflated(0.5) == Rect(0.5, 0.5, 2.5, 2.5)


class TestRectProperties:
    @given(rects(), rects())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects(), coords, coords)
    def test_translation_preserves_area(self, r, dx, dy):
        assert r.translated(dx, dy).area == pytest.approx(r.area, abs=1e-6)

    @given(rects(), coords)
    def test_mirror_involution(self, r, axis):
        m = r.mirrored_x(axis).mirrored_x(axis)
        assert m.x0 == pytest.approx(r.x0, abs=1e-6)
        assert m.x1 == pytest.approx(r.x1, abs=1e-6)


class TestHelpers:
    def test_total_area(self):
        assert total_area([Rect(0, 0, 2, 2), Rect(0, 0, 1, 1)]) == 5.0

    def test_any_overlap_detects(self):
        assert any_overlap([Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)])

    def test_any_overlap_touching_ok(self):
        assert not any_overlap([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)])

    def test_any_overlap_empty(self):
        assert not any_overlap([])

    def test_any_overlap_many_disjoint(self):
        rects = [Rect.from_size(3.0 * i, 0.0, 2.0, 2.0) for i in range(50)]
        assert not any_overlap(rects)
