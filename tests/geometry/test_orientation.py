"""Tests for the orientation group."""

import pytest

from repro.geometry import ALL_ORIENTATIONS, Orientation, oriented_size


class TestOrientationAlgebra:
    def test_eight_orientations(self):
        assert len(ALL_ORIENTATIONS) == 8

    def test_swapping_set(self):
        swapping = {o for o in ALL_ORIENTATIONS if o.swaps_wh}
        assert swapping == {
            Orientation.R90,
            Orientation.R270,
            Orientation.MX90,
            Orientation.MY90,
        }

    def test_mirrored_set(self):
        mirrored = {o for o in ALL_ORIENTATIONS if o.is_mirrored}
        assert mirrored == {
            Orientation.MX,
            Orientation.MY,
            Orientation.MX90,
            Orientation.MY90,
        }

    def test_four_rotations_cycle(self):
        o = Orientation.R0
        seen = [o]
        for _ in range(3):
            o = o.rotated_ccw()
            seen.append(o)
        assert seen == [
            Orientation.R0,
            Orientation.R90,
            Orientation.R180,
            Orientation.R270,
        ]
        assert o.rotated_ccw() == Orientation.R0

    @pytest.mark.parametrize("o", ALL_ORIENTATIONS)
    def test_rotation_has_order_four(self, o):
        r = o
        for _ in range(4):
            r = r.rotated_ccw()
        assert r == o

    @pytest.mark.parametrize("o", ALL_ORIENTATIONS)
    def test_mirror_y_is_involution(self, o):
        assert o.mirrored_y().mirrored_y() == o

    @pytest.mark.parametrize("o", ALL_ORIENTATIONS)
    def test_mirror_x_is_involution(self, o):
        assert o.mirrored_x().mirrored_x() == o

    @pytest.mark.parametrize("o", ALL_ORIENTATIONS)
    def test_mirror_flips_chirality(self, o):
        assert o.mirrored_y().is_mirrored != o.is_mirrored
        assert o.mirrored_x().is_mirrored != o.is_mirrored

    @pytest.mark.parametrize("o", ALL_ORIENTATIONS)
    def test_rotation_preserves_chirality(self, o):
        assert o.rotated_ccw().is_mirrored == o.is_mirrored

    def test_mirror_x_equals_mirror_y_rot180(self):
        for o in ALL_ORIENTATIONS:
            assert o.mirrored_x() == o.mirrored_y().rotated_ccw().rotated_ccw()


class TestOrientedSize:
    def test_r0_keeps_size(self):
        assert oriented_size(3.0, 5.0, Orientation.R0) == (3.0, 5.0)

    def test_r90_swaps(self):
        assert oriented_size(3.0, 5.0, Orientation.R90) == (5.0, 3.0)

    def test_mirrors_keep_size(self):
        assert oriented_size(3.0, 5.0, Orientation.MX) == (3.0, 5.0)
        assert oriented_size(3.0, 5.0, Orientation.MY) == (3.0, 5.0)

    def test_mirror_rotations_swap(self):
        assert oriented_size(3.0, 5.0, Orientation.MX90) == (5.0, 3.0)
        assert oriented_size(3.0, 5.0, Orientation.MY90) == (5.0, 3.0)
