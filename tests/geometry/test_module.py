"""Tests for modules and module sets."""

import pytest

from repro.geometry import Module, ModuleSet, Orientation, ShapeVariant


class TestShapeVariant:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ShapeVariant(0.0, 1.0)
        with pytest.raises(ValueError):
            ShapeVariant(1.0, -2.0)

    def test_area(self):
        assert ShapeVariant(2.0, 3.0).area == 6.0

    def test_oriented(self):
        v = ShapeVariant(2.0, 3.0)
        assert v.oriented(Orientation.R0) == (2.0, 3.0)
        assert v.oriented(Orientation.R90) == (3.0, 2.0)


class TestModule:
    def test_hard_module(self):
        m = Module.hard("a", 4.0, 2.0)
        assert m.is_hard
        assert m.width == 4.0
        assert m.height == 2.0
        assert m.area == 8.0

    def test_requires_name(self):
        with pytest.raises(ValueError):
            Module("", (ShapeVariant(1, 1),))

    def test_requires_variants(self):
        with pytest.raises(ValueError):
            Module("a", ())

    def test_soft_module_preserves_area(self):
        m = Module.soft("s", 36.0, aspect_ratios=(0.5, 1.0, 2.0))
        assert not m.is_hard
        assert len(m.variants) == 3
        for v in m.variants:
            assert v.area == pytest.approx(36.0)

    def test_soft_module_aspect(self):
        m = Module.soft("s", 16.0, aspect_ratios=(4.0,))
        v = m.variants[0]
        assert v.height / v.width == pytest.approx(4.0)

    def test_soft_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            Module.soft("s", -1.0)
        with pytest.raises(ValueError):
            Module.soft("s", 4.0, aspect_ratios=(0.0,))

    def test_footprint_variant_orientation(self):
        m = Module("a", (ShapeVariant(2, 3), ShapeVariant(1, 6)))
        assert m.footprint(0, Orientation.R0) == (2, 3)
        assert m.footprint(1, Orientation.R90) == (6, 1)

    def test_min_area(self):
        m = Module("a", (ShapeVariant(2, 3), ShapeVariant(1, 4)))
        assert m.min_area() == 4.0


class TestModuleSet:
    def test_lookup(self, small_modules):
        assert small_modules["a"].width == 4.0
        assert "b" in small_modules
        assert "zz" not in small_modules

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ModuleSet.of([Module.hard("a", 1, 1), Module.hard("a", 2, 2)])

    def test_len_iter_names(self, small_modules):
        assert len(small_modules) == 5
        assert small_modules.names() == ("a", "b", "c", "d", "e")
        assert [m.name for m in small_modules] == list(small_modules.names())

    def test_total_module_area(self, small_modules):
        expected = 4 * 3 + 2 * 5 + 6 * 2 + 3 * 3 + 1 * 7
        assert small_modules.total_module_area() == expected
