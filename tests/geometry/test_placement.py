"""Tests for placements."""

import pytest

from repro.geometry import (
    Module,
    Orientation,
    PlacedModule,
    Placement,
    Rect,
)


def place(name, x, y, w, h):
    return PlacedModule(Module.hard(name, w, h), Rect.from_size(x, y, w, h))


@pytest.fixture
def row_placement():
    return Placement.of(
        [place("a", 0, 0, 2, 3), place("b", 2, 0, 4, 2), place("c", 6, 0, 1, 5)]
    )


class TestPlacedModule:
    def test_rect_must_match_footprint(self):
        with pytest.raises(ValueError):
            PlacedModule(Module.hard("a", 2, 3), Rect.from_size(0, 0, 3, 3))

    def test_orientation_footprint(self):
        pm = PlacedModule(
            Module.hard("a", 2, 3), Rect.from_size(0, 0, 3, 2), orientation=Orientation.R90
        )
        assert pm.rect.width == 3

    def test_translated(self):
        pm = place("a", 0, 0, 2, 3).translated(1, 1)
        assert pm.rect == Rect(1, 1, 3, 4)

    def test_mirrored_x(self):
        pm = place("a", 0, 0, 2, 3).mirrored_x(5.0)
        assert pm.rect == Rect(8, 0, 10, 3)
        assert pm.orientation == Orientation.MY


class TestPlacement:
    def test_duplicate_modules_rejected(self):
        with pytest.raises(ValueError):
            Placement.of([place("a", 0, 0, 1, 1), place("a", 2, 2, 1, 1)])

    def test_lookup(self, row_placement):
        assert row_placement["b"].rect.x0 == 2
        assert "c" in row_placement
        assert len(row_placement) == 3

    def test_empty(self):
        p = Placement.empty()
        assert len(p) == 0
        assert p.area == 0.0

    def test_bounding_box(self, row_placement):
        assert row_placement.bounding_box() == Rect(0, 0, 7, 5)
        assert row_placement.width == 7
        assert row_placement.height == 5

    def test_metrics(self, row_placement):
        assert row_placement.module_area() == 2 * 3 + 4 * 2 + 1 * 5
        assert row_placement.area == 35.0
        assert row_placement.area_usage() == pytest.approx(35.0 / 19.0)
        assert row_placement.dead_space() == pytest.approx(16.0)

    def test_overlap_free(self, row_placement):
        assert row_placement.is_overlap_free()
        assert row_placement.overlapping_pairs() == []

    def test_overlap_detected(self):
        p = Placement.of([place("a", 0, 0, 3, 3), place("b", 1, 1, 3, 3)])
        assert not p.is_overlap_free()
        assert p.overlapping_pairs() == [("a", "b")]

    def test_touching_is_not_overlap(self, row_placement):
        assert row_placement.is_overlap_free(tol=0.0)

    def test_translated_and_normalized(self, row_placement):
        moved = row_placement.translated(-3, 4)
        assert moved.bounding_box() == Rect(-3, 4, 4, 9)
        norm = moved.normalized()
        assert norm.bounding_box() == Rect(0, 0, 7, 5)

    def test_mirrored_x_preserves_metrics(self, row_placement):
        m = row_placement.mirrored_x(10.0)
        assert m.area == row_placement.area
        assert m.is_overlap_free()

    def test_merged_with(self, row_placement):
        extra = Placement.of([place("z", 0, 10, 2, 2)])
        merged = row_placement.merged_with(extra)
        assert len(merged) == 4
        assert "z" in merged

    def test_merge_duplicate_raises(self, row_placement):
        with pytest.raises(ValueError):
            row_placement.merged_with(Placement.of([place("a", 0, 10, 1, 1)]))

    def test_subset(self, row_placement):
        sub = row_placement.subset(["a", "c"])
        assert len(sub) == 2
        assert "b" not in sub

    def test_positions_view(self, row_placement):
        pos = row_placement.positions()
        assert pos["a"] == Rect(0, 0, 2, 3)
