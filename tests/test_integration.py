"""Cross-module integration tests: every engine against every testcase.

These exercise the full paths a user of the library would take — circuit
in, legal constrained placement out — across all three placement engines
and the sizing flow.
"""

import pytest

from repro.bstar import BStarPlacerConfig, HierarchicalPlacer
from repro.circuit import (
    fig2_design,
    miller_opamp,
    simple_testcase,
    table1_circuit,
)
from repro.seqpair import PlacerConfig, SequencePairPlacer
from repro.shapes import DeterministicConfig, DeterministicPlacer


def assert_legal(circuit, placement):
    assert placement.is_overlap_free(), "modules overlap"
    assert {pm.name for pm in placement} == set(circuit.modules().names())
    for group in circuit.constraints().symmetry:
        assert group.symmetry_error(placement) <= 1e-6, group.name
    for group in circuit.constraints().common_centroid:
        assert group.centroid_error(placement) <= 1e-6, group.name


class TestAllEnginesOnMiller:
    @pytest.fixture(scope="class")
    def circuit(self):
        return miller_opamp()

    def test_sequence_pair_engine(self, circuit):
        result = SequencePairPlacer.for_circuit(
            circuit, PlacerConfig(seed=1, alpha=0.88, steps_per_epoch=30)
        ).run()
        assert_legal(circuit, result.placement)

    def test_hierarchical_engine(self, circuit):
        result = HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=1, alpha=0.88, steps_per_epoch=30)
        ).run()
        assert_legal(circuit, result.placement)

    def test_deterministic_engine(self, circuit):
        result = DeterministicPlacer(circuit, DeterministicConfig()).run()
        assert_legal(circuit, result.placement)

    def test_engines_comparable_quality(self, circuit):
        """All three engines land in a sane density band for this cell."""
        sp = SequencePairPlacer.for_circuit(
            circuit, PlacerConfig(seed=1, alpha=0.88, steps_per_epoch=30)
        ).run().placement
        det = DeterministicPlacer(circuit, DeterministicConfig()).run().placement
        for p in (sp, det):
            assert 1.0 <= p.area_usage() < 1.8


class TestAllEnginesOnFig2:
    @pytest.fixture(scope="class")
    def circuit(self):
        return fig2_design()

    def test_hierarchical_engine(self, circuit):
        result = HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=2, alpha=0.88, steps_per_epoch=30)
        ).run()
        assert_legal(circuit, result.placement)
        for group in circuit.constraints().proximity:
            assert group.is_satisfied(result.placement), group.name

    def test_deterministic_engine(self, circuit):
        result = DeterministicPlacer(circuit, DeterministicConfig()).run()
        assert_legal(circuit, result.placement)


class TestSynthesizedCircuits:
    @pytest.mark.parametrize("n,seed", [(6, 0), (11, 1), (16, 2)])
    def test_deterministic_on_random_circuits(self, n, seed):
        circuit = simple_testcase(n, seed)
        result = DeterministicPlacer(circuit, DeterministicConfig()).run()
        assert_legal(circuit, result.placement)

    @pytest.mark.parametrize("n,seed", [(6, 3), (10, 4)])
    def test_hierarchical_on_random_circuits(self, n, seed):
        circuit = simple_testcase(n, seed)
        result = HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=seed, alpha=0.85, steps_per_epoch=20)
        ).run()
        assert_legal(circuit, result.placement)

    @pytest.mark.parametrize("n,seed", [(7, 5), (9, 6)])
    def test_sequence_pair_on_random_circuits(self, n, seed):
        circuit = simple_testcase(n, seed)
        result = SequencePairPlacer.for_circuit(
            circuit, PlacerConfig(seed=seed, alpha=0.85, steps_per_epoch=20)
        ).run()
        assert_legal(circuit, result.placement)


class TestTable1Smoke:
    """One mid-size Table-I circuit end to end through the section-IV flow."""

    def test_folded_cascode_esf_vs_rsf(self):
        circuit = table1_circuit("folded_cascode")
        esf = DeterministicPlacer(circuit, DeterministicConfig(enhanced=True)).run()
        rsf = DeterministicPlacer(circuit, DeterministicConfig(enhanced=False)).run()
        assert_legal(circuit, esf.placement)
        assert_legal(circuit, rsf.placement)
        assert esf.area_usage <= rsf.area_usage + 1e-9
