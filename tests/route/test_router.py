"""Tests for the net-level router and symmetric pair routing."""

import pytest

from repro.bstar import BStarPlacerConfig, HierarchicalPlacer
from repro.circuit import SymmetryGroup, fig2_design, miller_opamp
from repro.geometry import Module, Net, PlacedModule, Placement, Rect
from repro.route import Router, route_symmetric_pair


def two_block_placement():
    pm = lambda n, x, y: PlacedModule(Module.hard(n, 4, 4), Rect.from_size(x, y, 4, 4))
    return Placement.of([pm("a", 0, 0), pm("b", 12, 0)])


class TestRouterBasics:
    def test_single_net(self):
        p = two_block_placement()
        router = Router(p, (Net("n", ("a", "b")),), pitch=1.0)
        result = router.route_all()
        assert result.failed == []
        net = result.routed["n"]
        assert net.wirelength > 0
        assert net.capacitance > 0
        assert net.resistance > 0

    def test_wires_avoid_modules_on_layer0(self):
        p = two_block_placement()
        router = Router(p, (Net("n", ("a", "b")),), pitch=1.0)
        result = router.route_all()
        blocked_nodes = [
            pt
            for pt in result.routed["n"].points()
            if pt.layer == 0 and router.grid._blocked[0][pt.col][pt.row]
        ]
        assert blocked_nodes == []

    def test_multi_pin_net_is_tree(self):
        pm = lambda n, x, y: PlacedModule(Module.hard(n, 3, 3), Rect.from_size(x, y, 3, 3))
        p = Placement.of([pm("a", 0, 0), pm("b", 10, 0), pm("c", 5, 10)])
        router = Router(p, (Net("n", ("a", "b", "c")),), pitch=1.0)
        result = router.route_all()
        assert result.failed == []
        assert len(result.routed["n"].paths) == 2  # two attachments

    def test_distinct_terminals_per_net(self):
        p = two_block_placement()
        nets = (Net("n1", ("a", "b")), Net("n2", ("a", "b")))
        router = Router(p, nets, pitch=1.0)
        assert router.pin("a", "n1") != router.pin("a", "n2")
        result = router.route_all()
        assert result.failed == []

    def test_nets_do_not_share_nodes(self):
        p = two_block_placement()
        nets = (Net("n1", ("a", "b")), Net("n2", ("a", "b")))
        router = Router(p, nets, pitch=1.0)
        result = router.route_all()
        pts1 = {(q.layer, q.col, q.row) for q in result.routed["n1"].points()}
        pts2 = {(q.layer, q.col, q.row) for q in result.routed["n2"].points()}
        assert not (pts1 & pts2)

    def test_bad_order_rejected(self):
        p = two_block_placement()
        router = Router(p, (Net("n", ("a", "b")),))
        with pytest.raises(ValueError):
            router.route_all(order="sideways")


class TestRouterOnCircuits:
    def test_fig2_fully_routed(self):
        circuit = fig2_design()
        placement = HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=5, alpha=0.9, steps_per_epoch=30)
        ).run().placement
        router = Router(placement, circuit.nets, pitch=0.5)
        result = router.route_all()
        assert result.failed == []
        assert result.success_rate == 1.0
        assert result.total_wirelength > 0

    def test_miller_fully_routed_at_fine_pitch(self):
        circuit = miller_opamp()
        from repro.seqpair import PlacerConfig, SequencePairPlacer

        placement = SequencePairPlacer.for_circuit(
            circuit, PlacerConfig(seed=3, alpha=0.9, steps_per_epoch=40)
        ).run().placement
        router = Router(placement, circuit.nets, pitch=0.25)
        result = router.route_all(retries=10)
        assert result.failed == []


class TestSymmetricRouting:
    def symmetric_setup(self):
        """A mirrored placement with a differential net pair."""
        pm = lambda n, x, y, w, h: PlacedModule(
            Module.hard(n, w, h), Rect.from_size(x, y, w, h)
        )
        # axis at x = 10; pairs (inL, inR) and (ldL, ldR)
        placement = Placement.of(
            [
                pm("inL", 2, 0, 4, 4),
                pm("inR", 14, 0, 4, 4),
                pm("ldL", 2, 10, 4, 4),
                pm("ldR", 14, 10, 4, 4),
            ]
        )
        nets = (Net("sigL", ("inL", "ldL")), Net("sigR", ("inR", "ldR")))
        return placement, nets

    def test_mirrored_routing_matches_parasitics(self):
        placement, nets = self.symmetric_setup()
        router = Router(placement, nets, pitch=1.0)
        result = route_symmetric_pair(router, nets[0], nets[1], axis_x=10.0)
        assert result.mirrored
        assert result.wirelength_mismatch == pytest.approx(0.0)
        assert result.capacitance_mismatch == pytest.approx(0.0)
        assert result.resistance_mismatch == pytest.approx(0.0)

    def test_mirrored_path_is_geometric_mirror(self):
        placement, nets = self.symmetric_setup()
        router = Router(placement, nets, pitch=1.0)
        result = route_symmetric_pair(router, nets[0], nets[1], axis_x=10.0)
        k = round(2 * (10.0 - router.grid.region.x0) / router.grid.pitch)
        left_pts = {(p.layer, p.col, p.row) for p in result.left.points()}
        right_pts = {(p.layer, p.col, p.row) for p in result.right.points()}
        assert {(l, k - c, r) for l, c, r in left_pts} == right_pts

    def test_misaligned_axis_rejected_when_strict(self):
        placement, nets = self.symmetric_setup()
        router = Router(placement, nets, pitch=1.0)
        from repro.route import RoutingError

        with pytest.raises(RoutingError):
            route_symmetric_pair(
                router, nets[0], nets[1], axis_x=10.3, snap_axis=False
            )

    def test_misaligned_axis_snaps_or_falls_back(self):
        """With a snapped axis the pair either mirrors exactly or falls
        back to independent routing — never a disconnected route."""
        placement, nets = self.symmetric_setup()
        router = Router(placement, nets, pitch=1.0)
        result = route_symmetric_pair(router, nets[0], nets[1], axis_x=10.3)
        if result.mirrored:
            assert result.wirelength_mismatch == pytest.approx(0.0)
        # both nets must connect their own pins either way
        for routed, net in ((result.left, nets[0]), (result.right, nets[1])):
            covered = {(p.col, p.row) for p in routed.points()}
            for module in net.pins:
                pin = router.pin(module, net.name)
                assert (pin.col, pin.row) in covered
