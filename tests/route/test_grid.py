"""Tests for the routing grid."""

import pytest

from repro.geometry import Module, PlacedModule, Placement, Rect
from repro.route import HORIZONTAL, VERTICAL, GridPoint, RoutingGrid


@pytest.fixture
def grid():
    return RoutingGrid(Rect(0, 0, 10, 10), pitch=1.0)


class TestGridBasics:
    def test_dimensions(self, grid):
        assert grid.cols == 11
        assert grid.rows == 11

    def test_bad_pitch(self):
        with pytest.raises(ValueError):
            RoutingGrid(Rect(0, 0, 10, 10), pitch=0.0)

    def test_coordinate_roundtrip(self, grid):
        p = grid.snap(3.2, 6.8)
        x, y = grid.to_xy(p)
        assert x == pytest.approx(3.0)
        assert y == pytest.approx(7.0)

    def test_snap_clamps(self, grid):
        p = grid.snap(-100.0, 100.0)
        assert p.col == 0
        assert p.row == grid.rows - 1

    def test_in_bounds(self, grid):
        assert grid.in_bounds(0, 0, 0)
        assert grid.in_bounds(1, 10, 10)
        assert not grid.in_bounds(0, 11, 0)
        assert not grid.in_bounds(2, 0, 0)


class TestObstacles:
    def test_block_rect(self, grid):
        grid.block_rect(Rect(2, 2, 5, 5), layers=(0,))
        assert not grid.is_free(0, 3, 3)
        assert grid.is_free(1, 3, 3)  # other layer untouched
        assert grid.is_free(0, 1, 3)  # outside

    def test_halo(self):
        grid = RoutingGrid(Rect(0, 0, 10, 10), pitch=1.0, halo=1.0)
        grid.block_rect(Rect(4, 4, 6, 6), layers=(0,))
        assert not grid.is_free(0, 3, 5)  # inside the halo

    def test_unblock_point(self, grid):
        grid.block_rect(Rect(2, 2, 5, 5), layers=(0,))
        grid.unblock_point(GridPoint(0, 3, 3))
        assert grid.is_free(0, 3, 3)


class TestOccupancy:
    def test_occupy_and_owner(self, grid):
        grid.occupy([GridPoint(0, 1, 1)], "netA")
        assert not grid.is_free(0, 1, 1)
        assert grid.is_free(0, 1, 1, net="netA")
        assert not grid.is_free(0, 1, 1, net="netB")

    def test_conflicting_occupy_raises(self, grid):
        grid.occupy([GridPoint(0, 1, 1)], "netA")
        with pytest.raises(ValueError):
            grid.occupy([GridPoint(0, 1, 1)], "netB")

    def test_release(self, grid):
        grid.occupy([GridPoint(0, 1, 1), GridPoint(1, 2, 2)], "netA")
        grid.release_net("netA")
        assert grid.is_free(0, 1, 1)
        assert grid.occupancy() == 0

    def test_net_points(self, grid):
        pts = [GridPoint(0, 1, 1), GridPoint(1, 2, 2)]
        grid.occupy(pts, "netA")
        assert sorted(grid.net_points("netA")) == sorted(pts)


class TestNeighbors:
    def test_layer_directionality(self, grid):
        h = list(grid.neighbors(GridPoint(HORIZONTAL, 5, 5)))
        assert GridPoint(HORIZONTAL, 4, 5) in h
        assert GridPoint(HORIZONTAL, 6, 5) in h
        assert GridPoint(HORIZONTAL, 5, 4) not in h  # no vertical on layer 0
        assert GridPoint(VERTICAL, 5, 5) in h         # via

        v = list(grid.neighbors(GridPoint(VERTICAL, 5, 5)))
        assert GridPoint(VERTICAL, 5, 4) in v
        assert GridPoint(VERTICAL, 5, 6) in v
        assert GridPoint(VERTICAL, 4, 5) not in v

    def test_neighbors_respect_occupancy(self, grid):
        grid.occupy([GridPoint(0, 6, 5)], "other")
        h = list(grid.neighbors(GridPoint(0, 5, 5), net="mine"))
        assert GridPoint(0, 6, 5) not in h


class TestOverPlacement:
    def test_blocks_lower_layer_only(self):
        p = Placement.of(
            [PlacedModule(Module.hard("a", 4, 4), Rect.from_size(0, 0, 4, 4))]
        )
        grid = RoutingGrid.over_placement(p, pitch=1.0, margin=2.0)
        inner = grid.snap(2.0, 2.0)
        assert not grid.is_free(0, inner.col, inner.row)
        assert grid.is_free(1, inner.col, inner.row)
