"""Tests for the A* maze router."""

import pytest

from repro.geometry import Rect
from repro.route import GridPoint, RoutingError, RoutingGrid, astar_connect


@pytest.fixture
def grid():
    return RoutingGrid(Rect(0, 0, 20, 20), pitch=1.0)


class TestAstar:
    def test_straight_horizontal(self, grid):
        path = astar_connect(grid, [GridPoint(0, 0, 5)], GridPoint(0, 10, 5))
        assert path.points[0] == GridPoint(0, 0, 5)
        assert path.points[-1].col == 10
        assert path.wirelength == 10
        assert path.vias == 0

    def test_l_shape_needs_one_via(self, grid):
        path = astar_connect(grid, [GridPoint(0, 0, 0)], GridPoint(0, 5, 5))
        # horizontal + via + vertical (+ possible via back to reach target
        # on layer 0, but target on layer 1 is also accepted)
        assert path.vias >= 1
        assert path.wirelength == 10

    def test_path_is_connected(self, grid):
        path = astar_connect(grid, [GridPoint(0, 2, 2)], GridPoint(0, 9, 13))
        for a, b in zip(path.points, path.points[1:]):
            manhattan = abs(a.col - b.col) + abs(a.row - b.row)
            if a.layer == b.layer:
                assert manhattan == 1
            else:
                assert manhattan == 0  # via

    def test_avoids_blocked_region(self, grid):
        # wall on both layers across the middle, with a gap at row 18
        for row in range(0, 18):
            for layer in (0, 1):
                grid._blocked[layer][10][row] = True
        path = astar_connect(grid, [GridPoint(0, 0, 5)], GridPoint(0, 20, 5))
        assert any(p.row >= 18 for p in path.points), "must detour over the wall"

    def test_unreachable_raises(self, grid):
        for row in range(grid.rows):
            for layer in (0, 1):
                grid._blocked[layer][10][row] = True
        with pytest.raises(RoutingError):
            astar_connect(grid, [GridPoint(0, 0, 5)], GridPoint(0, 20, 5))

    def test_blocked_target_raises(self, grid):
        for layer in (0, 1):
            grid._blocked[layer][10][10] = True
        with pytest.raises(RoutingError):
            astar_connect(grid, [GridPoint(0, 0, 0)], GridPoint(0, 10, 10))

    def test_multi_source_picks_closest(self, grid):
        sources = [GridPoint(0, 0, 0), GridPoint(0, 18, 10)]
        path = astar_connect(grid, sources, GridPoint(0, 19, 10))
        assert path.points[0] == GridPoint(0, 18, 10)
        assert path.wirelength == 1

    def test_no_sources_rejected(self, grid):
        with pytest.raises(ValueError):
            astar_connect(grid, [], GridPoint(0, 0, 0))

    def test_respects_other_nets(self, grid):
        # other net occupies a full double-layer wall except one gap
        wall = []
        for row in range(grid.rows):
            if row == 15:
                continue
            for layer in (0, 1):
                wall.append(GridPoint(layer, 10, row))
        grid.occupy(wall, "other")
        path = astar_connect(grid, [GridPoint(0, 0, 5)], GridPoint(0, 20, 5), net="mine")
        assert any(p.col == 10 and p.row == 15 for p in path.points)

    def test_optimal_under_cost_model(self, grid):
        # straight line must be preferred over any detour
        path = astar_connect(grid, [GridPoint(1, 5, 0)], GridPoint(1, 5, 12))
        assert path.wirelength == 12
        assert path.vias == 0
