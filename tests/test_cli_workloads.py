"""CLI surface of the workload subsystem: listing, gen:/file: names,
export, and the error paths the registry promises."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main

DATA = Path(__file__).parent / "workloads" / "data"


class TestListing:
    def test_workloads_list_shows_counts_and_schemes(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        assert "miller-opamp: 9 modules, 6 nets" in out
        assert "lnamixbias" in out
        assert "gen:n=<modules>" in out
        assert "file:<path>.blocks" in out

    def test_listing_leads_with_resolvable_registry_keys(self, capsys):
        """Every listed line starts with a name `place` accepts — the
        sized_folded_cascode circuit *displays* as 'folded-cascode',
        which does not resolve; the key column is what users copy."""
        main(["workloads", "list"])
        out = capsys.readouterr().out
        for line in out.splitlines():
            if line.startswith(("gen:", "file:")) or not line.strip():
                continue
            key = line.split()[0]
            from repro.workloads import resolve_workload

            assert resolve_workload(key) is not None

    def test_place_list_circuits_flag(self, capsys):
        assert main(["place", "--list-circuits"]) == 0
        out = capsys.readouterr().out
        assert "miller-opamp" in out and "gen:" in out

    def test_circuits_alias_matches_workloads_list(self, capsys):
        main(["circuits"])
        via_alias = capsys.readouterr().out
        main(["workloads", "list"])
        assert capsys.readouterr().out == via_alias


class TestPlaceNewNames:
    def test_place_gen_workload(self, capsys):
        code = main(["place", "gen:n=10,seed=4", "--engine", "slicing"])
        out = capsys.readouterr().out
        assert "gen:n=10,seed=4" in out
        assert "area usage" in out
        assert code in (0, 1)

    def test_place_circuit_flag_spelling(self, capsys):
        code = main(["place", "--circuit", "gen:n=8,seed=1", "--engine", "slicing"])
        assert "area usage" in capsys.readouterr().out
        assert code in (0, 1)

    def test_place_file_workload(self, capsys):
        code = main(
            ["place", f"file:{DATA / 'toy4.blocks'}", "--engine", "seqpair"]
        )
        out = capsys.readouterr().out
        assert "toy4: 4 modules" in out
        assert code == 0

    def test_gen_portfolio_end_to_end(self, capsys):
        code = main(
            ["place", "--circuit", "gen:n=20,seed=3,sym=0.3", "--starts", "2",
             "--engines", "hbtree", "--budget", "600"]
        )
        out = capsys.readouterr().out
        assert "portfolio: " in out and "area usage" in out
        assert code in (0, 1)


class TestPlaceErrors:
    def test_missing_circuit_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="no circuit named"):
            main(["place"])

    def test_conflicting_circuit_spellings_rejected(self):
        with pytest.raises(SystemExit, match="circuit given twice"):
            main(["place", "fig2", "--circuit", "miller_opamp"])

    def test_agreeing_spellings_are_fine(self, capsys):
        code = main(["place", "gen:n=6,seed=0", "--circuit", "gen:n=6,seed=0",
                     "--engine", "slicing"])
        assert "area usage" in capsys.readouterr().out
        assert code in (0, 1)

    def test_unknown_workload_names_nearest_match(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["place", "miler_opamp"])
        assert "did you mean 'miller_opamp'" in str(excinfo.value)

    def test_bad_gen_spec_is_surfaced(self):
        with pytest.raises(SystemExit, match="unknown workload parameter"):
            main(["place", "gen:n=8,wat=1"])

    def test_missing_file_is_surfaced(self, tmp_path):
        with pytest.raises(SystemExit, match="no such benchmark"):
            main(["place", f"file:{tmp_path / 'ghost.blocks'}"])


class TestExport:
    def test_export_reimport_place(self, tmp_path, capsys):
        code = main(
            ["workloads", "export", "gen:n=12,seed=5", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        blocks = tmp_path / "gen_n_12_seed_5.blocks"
        assert blocks.exists()
        code = main(["place", f"file:{blocks}", "--engine", "slicing"])
        assert "12 modules" in capsys.readouterr().out
        assert code in (0, 1)

    def test_export_with_basename_and_placement(self, tmp_path, capsys):
        code = main(
            ["workloads", "export", "file:" + str(DATA / "toy4.blocks"),
             "--out", str(tmp_path), "--basename", "placed", "--place",
             "--engine", "bstar", "--seed", "2"]
        )
        assert code == 0
        pl = (tmp_path / "placed.pl").read_text()
        # --place writes real (non-zero) locations for at least one block
        coords = [line.split()[1:3] for line in pl.splitlines()[2:] if line]
        assert any(xy != ["0", "0"] for xy in coords)

    def test_export_unknown_workload_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["workloads", "export", "nope", "--out", str(tmp_path)])
        assert "unknown workload" in str(excinfo.value)
