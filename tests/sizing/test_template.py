"""Tests for the procedural layout template."""

import pytest

from repro.sizing import (
    TEMPLATE_NETS,
    FoldedCascodeSizing,
    cap_footprint,
    device_footprint,
    generate_layout,
)


class TestFootprints:
    def test_folding_tradeoff(self):
        w1, h1 = device_footprint(100.0, 0.5, 1)
        w4, h4 = device_footprint(100.0, 0.5, 4)
        assert w4 > w1
        assert h4 < h1

    def test_area_roughly_preserved_by_folding(self):
        # folding redistributes area; gross area stays within 3x
        a1 = device_footprint(100.0, 0.5, 1)
        a8 = device_footprint(100.0, 0.5, 8)
        assert a1[0] * a1[1] < 3 * a8[0] * a8[1]
        assert a8[0] * a8[1] < 3 * a1[0] * a1[1]

    def test_invalid_fingers(self):
        with pytest.raises(ValueError):
            device_footprint(10.0, 0.5, 0)

    def test_cap_square(self):
        w, h = cap_footprint(900.0)
        assert w == h == pytest.approx(30.0)


class TestGeneratedLayout:
    def test_all_devices_present(self):
        layout = generate_layout(FoldedCascodeSizing())
        names = set(layout.rects)
        expected = {f"M{i}" for i in range(11)} | {"CL1", "CL2"}
        assert names == expected

    def test_no_overlaps(self):
        layout = generate_layout(FoldedCascodeSizing())
        assert layout.placement().is_overlap_free()

    def test_differential_symmetry_of_rows(self):
        """The template centers rows: mirrored devices sit at mirrored x."""
        layout = generate_layout(FoldedCascodeSizing())
        axis = layout.width / 2.0
        for left, right in (("M1", "M2"), ("M7", "M8"), ("M3", "M4"), ("M5", "M6")):
            lc = layout.rects[left].center.x
            rc = layout.rects[right].center.x
            assert lc + rc == pytest.approx(2 * axis, abs=1e-6)

    def test_net_lengths_positive(self):
        layout = generate_layout(FoldedCascodeSizing())
        for net in TEMPLATE_NETS:
            assert layout.net_lengths[net] > 0
            assert layout.wire_cap(net) > 0

    def test_folding_compacts_tall_layouts(self):
        tall = generate_layout(FoldedCascodeSizing(nf_in=1, nf_src_p=1, nf_sink_n=1))
        folded = generate_layout(
            FoldedCascodeSizing(
                nf_in=8, nf_tail=8, nf_src_p=8, nf_casc_p=8, nf_casc_n=8, nf_sink_n=8
            )
        )
        assert folded.height < tall.height
        assert folded.aspect_ratio < tall.aspect_ratio

    def test_area_and_aspect(self):
        layout = generate_layout(FoldedCascodeSizing())
        assert layout.area == pytest.approx(layout.width * layout.height)
        assert layout.aspect_ratio == pytest.approx(layout.height / layout.width)

    def test_placement_cached(self):
        layout = generate_layout(FoldedCascodeSizing())
        assert layout.placement() is layout.placement()


class TestSizingVector:
    def test_clamping(self):
        s = FoldedCascodeSizing(w_in=1e9, i_in=-5.0, nf_in=1000).clamped()
        assert s.w_in == 600.0
        assert s.i_in == 20.0
        assert s.nf_in == 32

    def test_with_values(self):
        s = FoldedCascodeSizing().with_values({"w_in": 50.0})
        assert s.w_in == 50.0

    def test_device_table_complete(self):
        rows = FoldedCascodeSizing().device_table()
        assert len(rows) == 11
        names = {r["name"] for r in rows}
        assert names == {f"M{i}" for i in range(11)}

    def test_branch_currents(self):
        s = FoldedCascodeSizing(i_in=80.0, i_casc=120.0)
        table = {r["name"]: r for r in s.device_table()}
        assert table["M0"]["ids"] == pytest.approx(160.0)
        assert table["M3"]["ids"] == pytest.approx(200.0)
        assert table["M9"]["ids"] == pytest.approx(120.0)

    def test_as_dict_roundtrip(self):
        s = FoldedCascodeSizing(w_in=42.0)
        d = s.as_dict()
        assert d["w_in"] == 42.0
        assert FoldedCascodeSizing().with_values(d).w_in == 42.0
