"""Tests for the spec model."""

import pytest

from repro.sizing import Sense, Spec, SpecSet


class TestSpec:
    def test_at_least_margin(self):
        s = Spec("gain", Sense.AT_LEAST, 60.0, "dB")
        assert s.margin(66.0) == pytest.approx(0.1)
        assert s.margin(54.0) == pytest.approx(-0.1)
        assert s.is_met(60.0)
        assert not s.is_met(59.9)

    def test_at_most_margin(self):
        s = Spec("power", Sense.AT_MOST, 2.0, "mW")
        assert s.margin(1.8) == pytest.approx(0.1)
        assert s.margin(2.2) == pytest.approx(-0.1)
        assert s.is_met(2.0)
        assert not s.is_met(2.01)

    def test_tolerance(self):
        s = Spec("gain", Sense.AT_LEAST, 60.0)
        assert s.is_met(59.9, tol=0.01)

    def test_describe(self):
        s = Spec("gain", Sense.AT_LEAST, 60.0, "dB")
        assert "PASS" in s.describe(70.0)
        assert "FAIL" in s.describe(50.0)


class TestSpecSet:
    def make(self):
        return SpecSet(
            (
                Spec("gain", Sense.AT_LEAST, 60.0, "dB"),
                Spec("power", Sense.AT_MOST, 2.0, "mW"),
            )
        )

    def test_violations(self):
        specs = self.make()
        assert specs.violations({"gain": 70.0, "power": 1.0}) == []
        assert specs.violations({"gain": 50.0, "power": 3.0}) == ["gain", "power"]
        assert specs.all_met({"gain": 60.0, "power": 2.0})

    def test_penalty_zero_when_met(self):
        specs = self.make()
        assert specs.penalty({"gain": 70.0, "power": 1.0}) == 0.0

    def test_penalty_sums_negative_margins(self):
        specs = self.make()
        p = specs.penalty({"gain": 54.0, "power": 2.2})
        assert p == pytest.approx(0.1 + 0.1)

    def test_margins_keyed_by_performance(self):
        m = self.make().margins({"gain": 66.0, "power": 1.8})
        assert set(m) == {"gain", "power"}

    def test_report_lines(self):
        report = self.make().report({"gain": 66.0, "power": 2.5})
        assert report.count("\n") == 1
        assert "FAIL" in report

    def test_len_iter(self):
        specs = self.make()
        assert len(specs) == 2
        assert [s.performance for s in specs] == ["gain", "power"]
