"""Tests for the MOS device model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sizing import (
    MOS_TECH,
    intrinsic_gain,
    junction_caps,
    operating_point,
    output_conductance,
    overdrive,
    transconductance,
)

ids_ = st.floats(1.0, 500.0)
ws = st.floats(1.0, 500.0)
ls = st.floats(0.35, 4.0)


class TestSquareLaw:
    def test_gm_known_value(self):
        # gm = sqrt(2 * kp * (W/L) * Id)
        gm = transconductance(100.0, 100.0, 1.0)
        assert gm == pytest.approx((2 * MOS_TECH["kp_n"] * 100 * 100) ** 0.5)

    def test_pmos_weaker(self):
        assert transconductance(100.0, 50.0, 1.0, pmos=True) < transconductance(
            100.0, 50.0, 1.0
        )

    @given(ids_, ws, ls)
    @settings(max_examples=40, deadline=None)
    def test_gm_id_vov_identity(self, ids, w, l):
        """Square law: gm = 2 Id / Vov."""
        gm = transconductance(ids, w, l)
        vov = overdrive(ids, w, l)
        assert gm == pytest.approx(2.0 * ids / vov, rel=1e-9)

    @given(ids_, ws, ls)
    @settings(max_examples=40, deadline=None)
    def test_gm_monotone_in_current(self, ids, w, l):
        assert transconductance(2 * ids, w, l) > transconductance(ids, w, l)

    def test_gds_scales_inverse_l(self):
        assert output_conductance(100.0, 2.0) == pytest.approx(
            output_conductance(100.0, 1.0) / 2.0
        )

    def test_intrinsic_gain_grows_with_l(self):
        assert intrinsic_gain(100.0, 50.0, 2.0) > intrinsic_gain(100.0, 50.0, 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            overdrive(-1.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            overdrive(1.0, 0.0, 1.0)


class TestJunctionCaps:
    def test_folding_reduces_drain_cap(self):
        """The key layout-aware effect: folding shares drain diffusions,
        roughly halving C_db (the 1 -> 2 finger step is the big win;
        beyond that the sidewall perimeter keeps it flat)."""
        cdb1, _ = junction_caps(100.0, 1)
        cdb2, _ = junction_caps(100.0, 2)
        cdb4, _ = junction_caps(100.0, 4)
        assert cdb2 < 0.6 * cdb1
        assert cdb4 < 0.6 * cdb1

    def test_one_finger_values(self):
        w = 10.0
        cdb, csb = junction_caps(w, 1)
        ld, cj, cjsw = MOS_TECH["l_diff"], MOS_TECH["cj"], MOS_TECH["cjsw"]
        expected = w * ld * cj + 2 * (w + ld) * cjsw
        assert cdb == pytest.approx(expected)
        # one finger: one drain, two sources? no - one drain, one source strip
        # each side: sources = floor(1/2)+1 = 1
        assert csb == pytest.approx(expected)

    def test_drain_source_stripe_counts(self):
        # nf=4: drains = 2, sources = 3
        cdb, csb = junction_caps(40.0, 4)
        assert csb > cdb

    def test_invalid_fingers(self):
        with pytest.raises(ValueError):
            junction_caps(10.0, 0)

    @given(ws, st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_caps_positive(self, w, nf):
        cdb, csb = junction_caps(w, nf)
        assert cdb > 0 and csb > 0


class TestOperatingPoint:
    def test_full_evaluation(self):
        op = operating_point(100.0, 50.0, 0.5, fingers=2)
        assert op.gm > 0
        assert op.gds > 0
        assert op.vov > 0
        assert op.cgs > 0
        assert op.cgd > 0
        assert op.cdb > 0

    def test_fingers_affect_only_junctions(self):
        op1 = operating_point(100.0, 50.0, 0.5, fingers=1)
        op4 = operating_point(100.0, 50.0, 0.5, fingers=4)
        assert op1.gm == op4.gm
        assert op1.cgs == op4.cgs
        assert op4.cdb < op1.cdb
