"""Tests for the sizing -> placement bridge and the full flow."""

import pytest

from repro.bstar import BStarPlacerConfig, HierarchicalPlacer
from repro.sizing import FoldedCascodeSizing, device_footprint, sizing_to_circuit


@pytest.fixture(scope="module")
def circuit():
    return sizing_to_circuit(FoldedCascodeSizing().clamped())


class TestBridge:
    def test_all_devices_and_caps_present(self, circuit):
        names = set(circuit.modules().names())
        assert names == {f"M{i}" for i in range(11)} | {"CL1", "CL2"}

    def test_footprints_follow_folding(self):
        folded = sizing_to_circuit(
            FoldedCascodeSizing(nf_in=4).clamped(), name="folded"
        )
        w, h = device_footprint(120.0, 0.5, 4)
        assert folded.module("M1").footprint() == (w, h)

    def test_symmetry_groups_cover_pairs(self, circuit):
        groups = circuit.constraints().symmetry
        pairs = {p for g in groups for p in g.pairs}
        assert ("M1", "M2") in pairs
        assert ("M5", "M6") in pairs
        assert ("CL1", "CL2") in pairs
        assert len(groups) == 6

    def test_nets_reference_modules(self, circuit):
        names = set(circuit.modules().names())
        for net in circuit.nets:
            assert set(net.pins) <= names

    def test_hierarchy_valid(self, circuit):
        circuit.hierarchy.validate()
        assert circuit.hierarchy.depth() == 3


class TestFullFlowPlacement:
    def test_placement_meets_all_constraints(self, circuit):
        placer = HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=7, alpha=0.88, steps_per_epoch=25)
        )
        placement = placer.run().placement
        assert placement.is_overlap_free()
        assert circuit.constraints().violations(placement) == []

    def test_topological_placement_beats_template(self):
        """The fixed row template trades area for regularity; the
        topological placer should pack the same modules tighter."""
        from repro.sizing import generate_layout

        sizing = FoldedCascodeSizing(nf_in=4, nf_src_p=4, nf_sink_n=4).clamped()
        template = generate_layout(sizing)
        circuit = sizing_to_circuit(sizing)
        placement = HierarchicalPlacer(
            circuit, BStarPlacerConfig(seed=3, alpha=0.9, steps_per_epoch=30)
        ).run().placement
        assert placement.area < template.area
