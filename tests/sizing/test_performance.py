"""Tests for the amplifier performance model and parasitic extraction."""

import pytest

from repro.sizing import (
    FoldedCascodeSizing,
    Parasitics,
    evaluate,
    extract,
    generate_layout,
)
from repro.sizing.performance import ac_model


@pytest.fixture
def nominal():
    return FoldedCascodeSizing().clamped()


class TestEvaluate:
    def test_reasonable_numbers(self, nominal):
        perf = evaluate(nominal)
        assert 40.0 < perf.dc_gain_db < 140.0
        assert 1.0 < perf.gbw_mhz < 1000.0
        assert 0.0 < perf.phase_margin_deg < 90.0
        assert perf.slew_rate_v_us > 0
        assert 0.0 < perf.swing_v < 3.3
        assert perf.power_mw > 0

    def test_parasitics_degrade_bandwidth(self, nominal):
        clean = evaluate(nominal)
        loaded = evaluate(nominal, Parasitics(c_out=500.0, c_fold=0.0))
        assert loaded.gbw_mhz < clean.gbw_mhz
        assert loaded.slew_rate_v_us < clean.slew_rate_v_us

    def test_fold_node_parasitics_degrade_phase_margin(self, nominal):
        clean = evaluate(nominal)
        loaded = evaluate(nominal, Parasitics(c_out=0.0, c_fold=400.0))
        assert loaded.phase_margin_deg < clean.phase_margin_deg
        # dc quantities untouched
        assert loaded.dc_gain_db == pytest.approx(clean.dc_gain_db)
        assert loaded.power_mw == pytest.approx(clean.power_mw)

    def test_longer_channels_more_gain(self, nominal):
        short = nominal.with_values({"l_in": 0.35, "l_casc_p": 0.35, "l_casc_n": 0.35})
        long = nominal.with_values({"l_in": 1.0, "l_casc_p": 1.0, "l_casc_n": 1.0})
        assert evaluate(long).dc_gain_db > evaluate(short).dc_gain_db

    def test_more_current_more_power_and_slew(self, nominal):
        hot = nominal.with_values({"i_in": 300.0, "i_casc": 300.0})
        assert evaluate(hot).power_mw > evaluate(nominal).power_mw
        assert evaluate(hot).slew_rate_v_us > evaluate(nominal).slew_rate_v_us

    def test_as_dict_keys(self, nominal):
        d = evaluate(nominal).as_dict()
        assert set(d) == {
            "dc_gain_db",
            "gbw_mhz",
            "phase_margin_deg",
            "slew_rate_v_us",
            "swing_v",
            "power_mw",
        }


class TestAcModel:
    def test_crossover_consistent_with_gbw(self, nominal):
        model = ac_model(nominal)
        f_u, pm = model.unity_gain_crossover()
        # |H(j f_u)| == 1 by definition of the crossover
        assert abs(model.response([f_u])[0]) == pytest.approx(1.0, rel=1e-2)
        assert 0.0 < pm < 90.0

    def test_two_pole_rolloff(self, nominal):
        model = ac_model(nominal)
        low = abs(model.response([model.p1_mhz / 100.0])[0])
        assert low == pytest.approx(model.a0, rel=1e-3)
        mid = abs(model.response([model.p1_mhz * 10.0])[0])
        assert mid < model.a0 / 5.0

    def test_parasitics_lower_p2(self, nominal):
        clean = ac_model(nominal)
        loaded = ac_model(nominal, Parasitics(c_out=0.0, c_fold=300.0))
        assert loaded.p2_mhz < clean.p2_mhz


class TestExtraction:
    def test_extraction_positive(self, nominal):
        layout = generate_layout(nominal)
        p = extract(nominal, layout)
        assert p.c_out > 0
        assert p.c_fold > 0

    def test_folding_reduces_extracted_output_cap(self, nominal):
        flat = nominal.with_values({"nf_casc_p": 1, "nf_casc_n": 1})
        folded = nominal.with_values({"nf_casc_p": 8, "nf_casc_n": 8})
        p_flat = extract(flat, generate_layout(flat))
        p_folded = extract(folded, generate_layout(folded))
        assert p_folded.c_out < p_flat.c_out

    def test_wider_devices_more_parasitics(self, nominal):
        small = nominal.with_values({"w_casc_p": 20.0, "w_casc_n": 10.0})
        big = nominal.with_values({"w_casc_p": 400.0, "w_casc_n": 300.0})
        p_small = extract(small, generate_layout(small))
        p_big = extract(big, generate_layout(big))
        assert p_big.c_out > p_small.c_out

    def test_zero(self):
        z = Parasitics.zero()
        assert z.c_out == 0.0 and z.c_fold == 0.0
