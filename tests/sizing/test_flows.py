"""Tests for the optimizer and the two Fig.-10 sizing flows.

These are the integration tests of paper section V: the layout-aware
flow must meet all specs *including parasitics* with a compact,
near-square layout, while the electrical-only flow fails specs after
extraction and wastes area.
"""

import pytest

from repro.sizing import (
    FoldedCascodeSizing,
    OptimizerConfig,
    SizingOptimizer,
    default_specs,
    electrical_sizing,
    evaluate,
    layout_aware_sizing,
)


@pytest.fixture(scope="module")
def plain():
    return electrical_sizing(seed=1)


@pytest.fixture(scope="module")
def aware():
    return layout_aware_sizing(seed=1)


class TestOptimizer:
    def test_improves_spec_penalty(self):
        specs = default_specs()
        config = OptimizerConfig(seed=0)
        opt = SizingOptimizer(specs, config, use_parasitics=False, use_geometry=False)
        start = FoldedCascodeSizing().clamped()
        outcome = opt.run(start)
        assert outcome.cost <= opt.cost(start)
        assert outcome.evaluations > 1000

    def test_deterministic(self):
        specs = default_specs()
        runs = [
            SizingOptimizer(
                specs, OptimizerConfig(seed=7), use_parasitics=False, use_geometry=False
            ).run()
            for _ in range(2)
        ]
        assert runs[0].sizing == runs[1].sizing

    def test_extraction_timer_only_when_used(self):
        specs = default_specs()
        no_layout = SizingOptimizer(
            specs, OptimizerConfig(seed=0), use_parasitics=False, use_geometry=False
        ).run()
        with_layout = SizingOptimizer(
            specs, OptimizerConfig(seed=0), use_parasitics=True, use_geometry=True
        ).run()
        assert no_layout.extraction_s == 0.0
        assert with_layout.extraction_s > 0.0
        assert 0.0 < with_layout.extraction_fraction < 1.0


class TestFig10Comparison:
    def test_plain_flow_meets_own_view(self, plain):
        """The electrical-only flow believes it met the specs..."""
        assert plain.specs.violations(plain.nominal.as_dict()) == []

    def test_plain_flow_fails_post_extraction(self, plain):
        """...but fails once layout parasitics are included (Fig. 10a)."""
        assert plain.extracted_violations() != []

    def test_aware_flow_meets_specs_post_extraction(self, aware):
        """Layout-aware sizing holds all specs with parasitics (Fig. 10b)."""
        assert aware.extracted_violations() == []
        assert aware.meets_specs_post_layout()

    def test_aware_layout_is_near_square(self, aware):
        assert 0.5 <= aware.layout.aspect_ratio <= 2.0

    def test_plain_layout_is_skewed(self, plain):
        skew = max(plain.layout.aspect_ratio, 1 / plain.layout.aspect_ratio)
        assert skew > 2.0

    def test_aware_layout_smaller(self, plain, aware):
        assert aware.layout.area < plain.layout.area

    def test_extraction_fraction_moderate(self, aware):
        """Extraction (incl. template generation) stays a workable share
        of the loop — the point of the paper's '17%' observation."""
        assert 0.02 < aware.extraction_fraction < 0.8

    def test_aware_uses_folding(self, aware):
        """The geometric variables are actually exercised: at least one
        device group ends up folded."""
        folds = [
            aware.sizing.nf_in,
            aware.sizing.nf_tail,
            aware.sizing.nf_src_p,
            aware.sizing.nf_casc_p,
            aware.sizing.nf_casc_n,
            aware.sizing.nf_sink_n,
        ]
        assert max(folds) > 1

    def test_reports_render(self, plain, aware):
        assert "electrical-only" in plain.report()
        assert "layout-aware" in aware.report()
        assert "PASS" in aware.report()

    def test_extracted_matches_reevaluation(self, aware):
        again = evaluate(aware.sizing, aware.parasitics)
        assert again.gbw_mhz == pytest.approx(aware.extracted.gbw_mhz)
