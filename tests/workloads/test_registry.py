"""Registry resolution: built-ins, gen:, file:, caching, shims, errors."""

from __future__ import annotations

import pickle
import random
from pathlib import Path

import pytest

from repro.anneal import IncrementalAnnealer
from repro.circuit import circuit_names
from repro.parallel import ENGINE_NAMES, PortfolioRunner, WalkSpec, build_placer
from repro.workloads import (
    BUILTIN_WORKLOADS,
    canonical_json,
    clear_workload_cache,
    resolve_workload,
    unknown_workload_message,
    workload_names,
    workload_summaries,
)

DATA = Path(__file__).parent / "data"

FAST = (("alpha", 0.8), ("t_final", 1e-2))


class TestBuiltins:
    def test_every_legacy_name_resolves(self):
        for name in ("miller_opamp", "fig2", "buffer", "lnamixbias"):
            assert resolve_workload(name).n_modules > 0

    def test_builtin_set_matches_the_legacy_registry(self):
        """The registry absorbed circuit_by_name; the legacy accessor
        delegates here, and the set is pinned explicitly so a name
        can neither vanish nor appear unreviewed."""
        assert workload_names() == circuit_names()
        assert set(BUILTIN_WORKLOADS) == {
            "miller_opamp",
            "fig2",
            "sized_folded_cascode",
            "miller_v2",
            "comparator_v2",
            "folded_cascode",
            "buffer",
            "biasynth",
            "lnamixbias",
        }

    def test_builds_are_cached(self):
        clear_workload_cache()
        assert resolve_workload("fig2") is resolve_workload("fig2")

    def test_summaries_cover_every_builtin(self):
        lines = workload_summaries()
        assert len(lines) == len(workload_names())
        assert any("miller-opamp" in line for line in lines)


class TestGenerated:
    def test_gen_resolution_is_cached_across_spellings(self):
        clear_workload_cache()
        a = resolve_workload("gen:n=16,seed=2,sym=0.5")
        b = resolve_workload("gen:sym=0.5,seed=2,n=16")
        assert a is b

    def test_gen_resolution_matches_direct_generation(self):
        from repro.workloads import generate_circuit, parse_gen_spec

        name = "gen:n=16,seed=2"
        assert canonical_json(resolve_workload(name)) == canonical_json(
            generate_circuit(parse_gen_spec(name))
        )

    def test_bad_gen_spec_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown workload parameter"):
            resolve_workload("gen:n=16,wat=3")


class TestFiles:
    def test_file_resolution(self):
        circuit = resolve_workload(f"file:{DATA / 'toy4.blocks'}")
        assert circuit.n_modules == 4

    def test_file_resolution_is_not_cached(self, tmp_path):
        """file: workloads re-read the disk — edits are visible."""
        src = (DATA / "toy4.blocks").read_text()
        target = tmp_path / "t.blocks"
        target.write_text(src)
        first = resolve_workload(f"file:{target}")
        target.write_text(
            src + "b9 hardrectilinear 4 (0, 0) (0, 1) (1, 1) (1, 0)\n"
        )
        assert resolve_workload(f"file:{target}").n_modules == first.n_modules + 1

    def test_missing_file_is_a_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="no such benchmark"):
            resolve_workload(f"file:{tmp_path / 'ghost.blocks'}")


class TestUnknownNames:
    def test_nearest_match_is_suggested(self):
        with pytest.raises(KeyError) as excinfo:
            resolve_workload("miler_opamp")
        message = excinfo.value.args[0]
        assert "did you mean 'miller_opamp'" in message
        assert "gen:" in message and "file:" in message

    def test_message_always_lists_the_builtins(self):
        message = unknown_workload_message("zzz")
        for name in workload_names():
            assert name in message


class TestDeprecationShims:
    def test_circuit_library_shim_warns_and_works(self):
        from repro.circuit import circuit_by_name

        with pytest.warns(DeprecationWarning, match="resolve_workload"):
            circuit = circuit_by_name("fig2")
        assert circuit is resolve_workload("fig2")

    def test_parallel_jobs_shim_warns_and_works(self):
        from repro.parallel.jobs import circuit_by_name

        with pytest.warns(DeprecationWarning, match="resolve_workload"):
            circuit = circuit_by_name("miller_opamp")
        assert circuit is resolve_workload("miller_opamp")

    def test_shim_accepts_new_name_families_too(self):
        from repro.circuit import circuit_by_name

        with pytest.warns(DeprecationWarning):
            assert circuit_by_name("gen:n=8,seed=1").n_modules == 8


def _walk(circuit, engine: str, seed: int, steps: int = 200):
    spec = WalkSpec(0, circuit.name, engine, seed, FAST)
    placer = build_placer(circuit, spec)
    rng = random.Random(seed)
    engine_obj = placer.engine()
    engine_obj.reset(placer.initial_state(rng))
    annealer = IncrementalAnnealer(engine_obj, placer.schedule(), rng)
    checkpoint = annealer.advance(annealer.begin(), steps, _engine_synced=True)
    return placer.finalize(checkpoint.best_state)


class TestBookshelfWorkloadsAnneal:
    """Acceptance: a Bookshelf fixture parsed from disk anneals on all
    four engines with bit-identical results across two same-seed runs."""

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_fixture_anneals_bit_identically(self, engine):
        circuit = resolve_workload(f"file:{DATA / 'mixed6.blocks'}")
        a = _walk(circuit, engine, seed=3)
        b = _walk(circuit, engine, seed=3)
        assert pickle.dumps(a) == pickle.dumps(b)
        assert len(a) == circuit.n_modules


class TestPortfolioIntegration:
    """Workload strings stay spawn-safe: workers re-resolve gen:/file:
    names; serial and 2-worker spawn runs return identical winners."""

    def test_gen_workload_through_the_portfolio(self):
        serial = PortfolioRunner(
            "gen:n=14,seed=2", ("bstar", "slicing"), starts=2, workers=0,
            budget=400, overrides=FAST,
        ).run()
        spawned = PortfolioRunner(
            "gen:n=14,seed=2", ("bstar", "slicing"), starts=2, workers=2,
            budget=400, overrides=FAST,
        ).run()
        assert pickle.dumps(serial.placement) == pickle.dumps(spawned.placement)
        assert serial.cost == spawned.cost

    def test_file_workload_through_the_portfolio(self):
        result = PortfolioRunner(
            f"file:{DATA / 'toy4.blocks'}", ("seqpair",), starts=2, workers=0,
            budget=400, overrides=FAST,
        ).run()
        assert len(result.leaderboard) >= 2
        assert len(result.placement) == 4
