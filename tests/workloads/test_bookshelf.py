"""Bookshelf I/O: fixture parsing, round-trip identity, error paths."""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    BookshelfError,
    WorkloadSpec,
    canonical_json,
    generate_circuit,
    parse_blocks,
    parse_nets,
    parse_pl,
    read_bookshelf,
    slugify,
    write_bookshelf,
)

DATA = Path(__file__).parent / "data"


class TestReadFixtures:
    def test_toy4_via_aux(self):
        design = read_bookshelf(DATA / "toy4.aux")
        circuit = design.circuit
        assert circuit.n_modules == 4
        assert {n.name for n in circuit.nets} == {"na", "nb", "nc"}
        assert circuit.module("b0").width == 6.0
        assert circuit.module("b0").height == 4.0
        assert design.positions["b1"] == (6.0, 0.0)
        assert design.terminals == ()

    def test_toy4_via_blocks_and_bare_basename(self):
        by_blocks = read_bookshelf(DATA / "toy4.blocks")
        by_base = read_bookshelf(DATA / "toy4")
        assert canonical_json(by_blocks.circuit) == canonical_json(by_base.circuit)

    def test_mixed6_soft_blocks_and_terminals(self):
        design = read_bookshelf(DATA / "mixed6.aux")
        circuit = design.circuit
        assert circuit.n_modules == 6
        assert design.terminals == ("p0", "p1")
        s0 = circuit.module("s0")
        assert not s0.is_hard
        # declared band 0.5..2 straddles 1.0: three variants
        assert len(s0.variants) == 3
        for variant in s0.variants:
            assert variant.area == pytest.approx(24.0)
        # n0 lost its terminal pin but keeps two block pins; n1 was
        # all-terminal and vanished
        names = {n.name: n.pins for n in circuit.nets}
        assert names["n0"] == ("h0", "s0")
        assert "n1" not in names

    def test_ring8_without_aux_or_pl(self):
        design = read_bookshelf(DATA / "ring8.blocks")
        assert design.circuit.n_modules == 8
        assert len(design.circuit.nets) == 8
        assert design.positions == {}


class TestRoundTrip:
    @pytest.mark.parametrize("basename", ["toy4", "mixed6", "ring8"])
    def test_parse_write_parse_identity(self, basename, tmp_path):
        first = read_bookshelf(DATA / basename).circuit
        write_bookshelf(first, tmp_path, basename)
        second = read_bookshelf(tmp_path / f"{basename}.blocks").circuit
        assert canonical_json(second) == canonical_json(first)

    def test_equal_aspect_soft_block_stays_soft(self, tmp_path):
        """aspectMin == aspectMax parses into a single variant; the
        writer must still emit softrectangular (is_hard would misroute
        it into the hard branch and lose the declaration)."""
        (tmp_path / "sq.blocks").write_text(
            "UCSC blocks 1.0\n"
            "NumSoftRectangularBlocks : 1\n"
            "NumHardRectilinearBlocks : 0\n"
            "NumTerminals : 0\n"
            "sq softrectangular 100 2 2\n"
        )
        first = read_bookshelf(tmp_path / "sq.blocks").circuit
        assert len(first.module("sq").variants) == 1
        write_bookshelf(first, tmp_path / "out", "sq")
        blocks = (tmp_path / "out" / "sq.blocks").read_text()
        assert "sq softrectangular 100 2 2" in blocks
        assert "NumSoftRectangularBlocks : 1" in blocks
        second = read_bookshelf(tmp_path / "out" / "sq.blocks").circuit
        assert canonical_json(second) == canonical_json(first)

    def test_rewrite_is_byte_stable(self, tmp_path):
        """writer(parser(writer(parser(x)))) emits identical files."""
        for basename in ("toy4", "mixed6"):
            first = read_bookshelf(DATA / basename).circuit
            write_bookshelf(first, tmp_path / "a", basename)
            second = read_bookshelf(tmp_path / "a" / f"{basename}.blocks").circuit
            write_bookshelf(second, tmp_path / "b", basename)
            for ext in ("aux", "blocks", "nets", "pl"):
                assert (tmp_path / "a" / f"{basename}.{ext}").read_text() == (
                    tmp_path / "b" / f"{basename}.{ext}"
                ).read_text()

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 30),
        seed=st.integers(0, 2**32),
        soft=st.floats(0.0, 0.6, allow_nan=False),
    )
    def test_exported_generator_circuits_round_trip(
        self, n, seed, soft, tmp_path_factory
    ):
        """Export flattens hierarchy/constraints (documented), but the
        exported *file family* re-imports to a stable fixpoint: parse ->
        write -> parse is the identity on everything the format carries."""
        tmp_path = tmp_path_factory.mktemp("bs")
        circuit = generate_circuit(WorkloadSpec(n=n, seed=seed, soft=soft))
        write_bookshelf(circuit, tmp_path, "exported")
        first = read_bookshelf(tmp_path / "exported.blocks").circuit
        write_bookshelf(first, tmp_path / "again", "exported")
        second = read_bookshelf(tmp_path / "again" / "exported.blocks").circuit
        assert canonical_json(second) == canonical_json(first)
        assert first.n_modules == circuit.n_modules

    def test_pl_carries_placement(self, tmp_path):
        from repro.parallel import WalkSpec, build_placer

        circuit = read_bookshelf(DATA / "toy4").circuit
        placer = build_placer(
            circuit, WalkSpec(0, "toy4", "bstar", 0, (("alpha", 0.5),))
        )
        placement = placer.run().placement
        write_bookshelf(circuit, tmp_path, "placed", placement=placement)
        positions = parse_pl((tmp_path / "placed.pl").read_text())
        for name in ("b0", "b1", "b2", "b3"):
            rect = placement[name].rect
            assert positions[name] == (rect.x0, rect.y0)


class TestDottedBasenames:
    def test_dotted_basename_resolves_its_own_siblings(self, tmp_path):
        """'ami33.v2.blocks' must probe 'ami33.v2.nets', never
        'ami33.nets' (with_suffix would swap the last dotted part)."""
        (tmp_path / "bench.v2.blocks").write_text(
            (DATA / "toy4.blocks").read_text()
        )
        (tmp_path / "bench.v2.nets").write_text((DATA / "toy4.nets").read_text())
        # a decoy family under the truncated name must NOT be picked up
        (tmp_path / "bench.nets").write_text(
            "UCLA nets 1.0\nNetDegree : 2 wrong\nb0 B\nb1 B\n"
        )
        circuit = read_bookshelf(tmp_path / "bench.v2.blocks").circuit
        assert {n.name for n in circuit.nets} == {"na", "nb", "nc"}

    def test_aux_declared_but_missing_member_raises(self, tmp_path):
        (tmp_path / "b.aux").write_text(
            "RowBasedPlacement : b.blocks b.nets b.pl\n"
        )
        (tmp_path / "b.blocks").write_text((DATA / "toy4.blocks").read_text())
        (tmp_path / "b.pl").write_text("UCLA pl 1.0\n")
        with pytest.raises(BookshelfError, match="declares b.nets"):
            read_bookshelf(tmp_path / "b.aux")


class TestErrors:
    def test_missing_benchmark(self, tmp_path):
        with pytest.raises(BookshelfError, match="no such benchmark"):
            read_bookshelf(tmp_path / "nope.blocks")

    def test_missing_aux(self, tmp_path):
        with pytest.raises(BookshelfError, match="no such benchmark"):
            read_bookshelf(tmp_path / "nope.aux")

    def test_rectilinear_blocks_rejected_cleanly(self):
        text = (
            "UCSC blocks 1.0\n"
            "l0 hardrectilinear 6 (0, 0) (0, 4) (2, 4) (2, 2) (6, 2) (6, 0)\n"
        )
        with pytest.raises(BookshelfError, match="6 vertices"):
            parse_blocks(text)

    def test_non_rectangle_vertices_rejected(self):
        text = "UCSC blocks 1.0\nb hardrectilinear 4 (0, 0) (1, 4) (6, 4) (6, 0)\n"
        with pytest.raises(BookshelfError, match="do not form a rectangle"):
            parse_blocks(text)

    def test_duplicate_block_rejected(self):
        text = (
            "UCSC blocks 1.0\n"
            "b hardrectilinear 4 (0, 0) (0, 1) (1, 1) (1, 0)\n"
            "b hardrectilinear 4 (0, 0) (0, 1) (1, 1) (1, 0)\n"
        )
        with pytest.raises(BookshelfError, match="duplicate block"):
            parse_blocks(text)

    def test_unsupported_kind_rejected(self):
        with pytest.raises(BookshelfError, match="unsupported block kind"):
            parse_blocks("UCSC blocks 1.0\nb circle 3\n")

    def test_vendor_prefixed_block_names_are_not_headers(self):
        """A block named 'UCLAblk' must parse, not vanish as a header."""
        modules, _ = parse_blocks(
            "UCSC blocks 1.0\n"
            "UCLAblk hardrectilinear 4 (0, 0) (0, 2) (3, 2) (3, 0)\n"
        )
        assert [m.name for m in modules] == ["UCLAblk"]

    def test_non_numeric_vertex_is_a_bookshelf_error(self):
        with pytest.raises(BookshelfError, match="non-numeric vertex"):
            parse_blocks(
                "UCSC blocks 1.0\nb hardrectilinear 4 (a, 0) (0, 1) (1, 1) (1, 0)\n"
            )

    def test_non_numeric_net_degree_is_a_bookshelf_error(self):
        with pytest.raises(BookshelfError, match="non-numeric net degree"):
            parse_nets("UCLA nets 1.0\nNetDegree : x n1\na B\n", {"a"})

    def test_non_utf8_benchmark_is_a_contextual_error(self, tmp_path):
        (tmp_path / "bin.blocks").write_bytes(b"\xff\xfe\x00garbage")
        with pytest.raises(BookshelfError, match="cannot read .*bin.blocks"):
            read_bookshelf(tmp_path / "bin.blocks")

    def test_directory_named_like_a_benchmark_is_a_contextual_error(
        self, tmp_path
    ):
        (tmp_path / "dir.blocks").mkdir()
        with pytest.raises(BookshelfError, match="cannot read .*dir.blocks"):
            read_bookshelf(tmp_path / "dir.blocks")

    def test_bad_soft_parameters_rejected(self):
        with pytest.raises(BookshelfError, match="bad soft block parameters"):
            parse_blocks("UCSC blocks 1.0\ns softrectangular 10 2 0.5\n")

    def test_unknown_net_pin_rejected(self):
        with pytest.raises(BookshelfError, match="unknown block"):
            parse_nets("UCLA nets 1.0\nNetDegree : 2 n\nx B\ny B\n", {"a"})

    def test_pin_before_netdegree_rejected(self):
        with pytest.raises(BookshelfError, match="before any NetDegree"):
            parse_nets("UCLA nets 1.0\na B\n", {"a"})

    def test_degree_overflow_rejected(self):
        text = "UCLA nets 1.0\nNetDegree : 1 n\na B\nb B\n"
        with pytest.raises(BookshelfError, match="exceeds its declared degree"):
            parse_nets(text, {"a", "b"})


class TestSlugify:
    def test_gen_names_become_filesystem_safe(self):
        assert slugify("gen:n=40,seed=7") == "gen_n_40_seed_7"
        assert "/" not in slugify("file:../x/y.blocks")
