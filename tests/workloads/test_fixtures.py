"""Committed standard-suite fixtures: parse, round-trip, byte-stability,
sweep registration — plus the ring8 aux-less loading contract."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads import (
    BookshelfError,
    canonical_json,
    read_bookshelf,
    resolve_workload,
    write_bookshelf,
)

DATA = Path(__file__).parent / "data"
FIXTURES = Path(__file__).resolve().parents[2] / "benchmarks" / "fixtures"
MEMBERS = ("aux", "blocks", "nets", "pl")


class TestCommittedFixtures:
    def test_ami33s_parses_as_declared(self):
        circuit = read_bookshelf(FIXTURES / "ami33s.aux").circuit
        assert circuit.n_modules == 12
        assert len(circuit.nets) == 14
        assert all(m.is_hard for m in circuit.modules())
        bk1 = circuit.module("bk1")
        assert (bk1.width, bk1.height) == (112.0, 133.0)

    def test_n100s_parses_as_declared(self):
        circuit = read_bookshelf(FIXTURES / "n100s.aux").circuit
        assert circuit.n_modules == 16
        assert len(circuit.nets) == 12
        assert not any(m.is_hard for m in circuit.modules())
        # soft blocks expose an aspect band as discrete variants
        assert len(circuit.module("sb0").variants) >= 2

    @pytest.mark.parametrize("basename", ["ami33s", "n100s"])
    def test_exact_round_trip(self, basename, tmp_path):
        first = read_bookshelf(FIXTURES / f"{basename}.aux").circuit
        write_bookshelf(first, tmp_path, basename)
        second = read_bookshelf(tmp_path / f"{basename}.aux").circuit
        assert canonical_json(second) == canonical_json(first)

    @pytest.mark.parametrize("basename", ["ami33s", "n100s"])
    def test_committed_bytes_are_canonical_writer_output(self, basename, tmp_path):
        """The committed files are the writer's own output, so writing
        the parsed circuit back must reproduce every member byte for
        byte — drift in either the fixtures or the writer fails here."""
        circuit = read_bookshelf(FIXTURES / f"{basename}.aux").circuit
        written = write_bookshelf(circuit, tmp_path, basename)
        assert set(written) == set(MEMBERS)
        for ext in MEMBERS:
            committed = (FIXTURES / f"{basename}.{ext}").read_bytes()
            assert written[ext].read_bytes() == committed, (
                f"{basename}.{ext}: committed fixture is not byte-stable"
            )

    @pytest.mark.parametrize("basename", ["ami33s", "n100s"])
    def test_fixtures_load_through_the_workload_registry(self, basename):
        circuit = resolve_workload(f"file:{FIXTURES / f'{basename}.aux'}")
        assert circuit.name == basename
        assert circuit.n_modules >= 12

    def test_fixtures_are_registered_in_the_sweep_declaration(self):
        from repro.analysis.sweep import tier_workloads

        for tier in ("quick", "full"):
            names = tier_workloads(tier)
            assert "file:benchmarks/fixtures/ami33s.aux" in names
            assert "file:benchmarks/fixtures/n100s.aux" in names


class TestRing8AuxlessContract:
    """ring8 deliberately ships without an ``.aux`` (or ``.pl``): these
    pin both sides of that contract so the fixture's shape is a
    decision, not an accident."""

    def test_aux_path_raises_cleanly(self):
        with pytest.raises(BookshelfError, match="no such benchmark"):
            read_bookshelf(DATA / "ring8.aux")

    def test_bare_basename_loads_via_blocks(self):
        design = read_bookshelf(DATA / "ring8")
        assert design.circuit.n_modules == 8
        assert design.positions == {}
        assert canonical_json(design.circuit) == canonical_json(
            read_bookshelf(DATA / "ring8.blocks").circuit
        )
