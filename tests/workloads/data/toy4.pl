UCLA pl 1.0

b0 0 0
b1 6 0
b2 0 4
b3 5 4
