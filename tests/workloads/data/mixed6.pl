UCLA pl 1.0

h0 0 0
h1 8 0
h2 10 0
h3 0 5
s0 0 7
s1 8 7
p0 -1 0
p1 14 0
