"""Generator properties: determinism, validity, constraint injection,
and the all-engines annealing smoke the issue demands."""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anneal import IncrementalAnnealer
from repro.circuit import ProximityGroup, SymmetryGroup
from repro.parallel import ENGINE_NAMES, WalkSpec, build_placer
from repro.workloads import (
    WorkloadSpec,
    canonical_json,
    generate_circuit,
    parse_gen_spec,
)

#: short-schedule overrides so a smoke walk stays in the milliseconds
FAST = (("alpha", 0.8), ("t_final", 1e-2))


@st.composite
def specs(draw) -> WorkloadSpec:
    return WorkloadSpec(
        n=draw(st.integers(2, 40)),
        seed=draw(st.integers(0, 2**32)),
        soft=draw(st.floats(0.0, 0.6, allow_nan=False)),
        area_sigma=draw(st.floats(0.0, 1.5, allow_nan=False)),
        nets=draw(st.floats(0.0, 2.0, allow_nan=False)),
        depth=draw(st.integers(2, 5)),
        sym=draw(st.floats(0.0, 0.6, allow_nan=False)),
        prox=draw(st.floats(0.0, 0.4, allow_nan=False)),
        outline=draw(st.one_of(st.none(), st.floats(0.0, 1.0, allow_nan=False))),
    )


class TestDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_same_spec_yields_byte_identical_circuits(self, spec):
        a = canonical_json(generate_circuit(spec))
        b = canonical_json(generate_circuit(spec))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_circuit(WorkloadSpec(n=30, seed=1))
        b = generate_circuit(WorkloadSpec(n=30, seed=2))
        assert canonical_json(a) != canonical_json(b)

    def test_name_and_direct_generation_agree(self):
        """resolve-by-name and generate-by-spec are the same function."""
        spec = parse_gen_spec("gen:n=25,seed=9,sym=0.3,soft=0.2")
        assert canonical_json(generate_circuit(spec)) == canonical_json(
            generate_circuit(parse_gen_spec(spec.canonical_name()))
        )


class TestValidity:
    @settings(max_examples=30, deadline=None)
    @given(specs())
    def test_generated_circuits_validate(self, spec):
        # Circuit.__post_init__ + hierarchy.validate() run on
        # construction: unknown net pins, duplicate names and
        # out-of-subtree constraints would all raise here
        circuit = generate_circuit(spec)
        assert circuit.n_modules == spec.n
        assert circuit.hierarchy.depth() <= spec.depth + 1
        for net in circuit.nets:
            assert len(net.pins) >= 2

    def test_constraint_injection(self):
        circuit = generate_circuit(WorkloadSpec(n=60, seed=4, sym=0.5, prox=0.4))
        constraints = circuit.constraints()
        assert constraints.symmetry, "sym=0.5 produced no symmetry groups"
        assert constraints.proximity, "prox=0.4 produced no proximity groups"
        for group in constraints.symmetry:
            assert isinstance(group, SymmetryGroup)
            for left, right in group.pairs:
                # matched footprints, rotation locked
                assert (
                    circuit.module(left).variants == circuit.module(right).variants
                )
                assert not circuit.module(left).rotatable
        for group in constraints.proximity:
            assert isinstance(group, ProximityGroup)

    def test_fixed_outline_attached_and_sized(self):
        spec = WorkloadSpec(n=20, seed=1, outline=0.25, outline_aspect=2.0)
        circuit = generate_circuit(spec)
        width, height = circuit.outline
        total = sum(m.area for m in circuit.modules())
        assert width * height == pytest.approx(total * 1.25)
        assert height / width == pytest.approx(2.0)

    def test_outline_free_by_default(self):
        assert generate_circuit(WorkloadSpec(n=10, seed=0)).outline is None

    def test_scales_to_thousands(self):
        circuit = generate_circuit(WorkloadSpec(n=2000, seed=0))
        assert circuit.n_modules == 2000
        assert len(circuit.nets) > 1000


def _walk(circuit, engine: str, seed: int, steps: int = 200):
    """Run ``steps`` annealing steps of ``engine`` on ``circuit`` via
    the same walk API the portfolio drives, returning the placement."""
    spec = WalkSpec(0, circuit.name, engine, seed, FAST)
    placer = build_placer(circuit, spec)
    rng = random.Random(seed)
    engine_obj = placer.engine()
    engine_obj.reset(placer.initial_state(rng))
    annealer = IncrementalAnnealer(engine_obj, placer.schedule(), rng)
    checkpoint = annealer.advance(annealer.begin(), steps, _engine_synced=True)
    return placer.finalize(checkpoint.best_state), checkpoint.best_cost


class TestEnginesSmoke:
    """Issue acceptance: every generated workload runs 200 annealing
    steps on all four engines without error, bit-identically per seed."""

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize(
        "name",
        [
            "gen:n=12,seed=3",
            "gen:n=18,seed=5,sym=0.4,prox=0.3,soft=0.25",
            "gen:n=24,seed=8,depth=4,outline=0.3",
        ],
    )
    def test_200_steps_on_every_engine(self, engine, name):
        circuit = generate_circuit(parse_gen_spec(name))
        placement_a, best_a = _walk(circuit, engine, seed=1)
        placement_b, best_b = _walk(circuit, engine, seed=1)
        assert placement_a is not placement_b
        assert best_a == best_b
        assert pickle.dumps(placement_a) == pickle.dumps(placement_b)
        assert len(placement_a) == circuit.n_modules
