"""WorkloadSpec: the gen: grammar, validation, canonical naming."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import GEN_PREFIX, WorkloadSpec, parse_gen_spec


class TestParsing:
    def test_minimal(self):
        spec = parse_gen_spec("gen:n=40")
        assert spec.n == 40
        assert spec.seed == 0

    def test_full_parameter_surface(self):
        spec = parse_gen_spec(
            "gen:n=100,seed=3,soft=0.2,area_mu=1.5,area_sigma=0.5,"
            "ar_min=0.5,ar_max=2,nets=1.5,gamma=2,max_degree=6,"
            "locality=0.7,depth=4,sym=0.3,prox=0.2,outline=0.15,"
            "outline_aspect=1.5"
        )
        assert spec.n == 100
        assert spec.depth == 4
        assert spec.outline == 0.15
        assert spec.outline_aspect == 1.5

    def test_aliases(self):
        spec = parse_gen_spec("gen:modules=8,symmetry=0.5,proximity=0.25")
        assert spec.n == 8
        assert spec.sym == 0.5
        assert spec.prox == 0.25

    def test_whitespace_and_empty_items_tolerated(self):
        assert parse_gen_spec("gen: n=8 , seed=1 ,").n == 8

    @pytest.mark.parametrize(
        "name, fragment",
        [
            ("gen:", "needs at least n="),
            ("gen:seed=1", "needs at least n="),
            ("gen:n=8,wat=1", "unknown workload parameter"),
            ("gen:n=8,seed", "expected key=value"),
            ("gen:n=8,sym=lots", "is not a number"),
            ("notgen:n=8", "not a generated-workload name"),
            ("gen:n=5,n=9", "more than once"),
            ("gen:n=5,modules=9", "more than once"),
        ],
    )
    def test_bad_names_raise_with_usable_messages(self, name, fragment):
        with pytest.raises(ValueError, match=fragment):
            parse_gen_spec(name)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"n": 8, "depth": 1},
            {"n": 8, "sym": 1.5},
            {"n": 8, "prox": -0.1},
            {"n": 8, "ar_min": 0.0},
            {"n": 8, "ar_min": 3.0, "ar_max": 2.0},
            {"n": 8, "max_degree": 1},
            {"n": 8, "outline": -0.5},
            {"n": 8, "outline_aspect": 0.0},
            # a no-op that would split the registry cache key
            {"n": 8, "outline_aspect": 2.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestCanonicalName:
    def test_defaults_render_minimal(self):
        assert WorkloadSpec(n=40, seed=7).canonical_name() == "gen:n=40,seed=7"

    def test_parameter_order_is_canonicalized(self):
        a = parse_gen_spec("gen:sym=0.5,n=40,seed=7")
        b = parse_gen_spec("gen:n=40,seed=7,sym=0.5")
        assert a == b
        assert a.canonical_name() == b.canonical_name() == "gen:n=40,seed=7,sym=0.5"

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 500),
        seed=st.integers(0, 2**31),
        soft=st.floats(0.0, 1.0, allow_nan=False),
        sym=st.floats(0.0, 1.0, allow_nan=False),
        depth=st.integers(2, 6),
    )
    def test_name_round_trips(self, n, seed, soft, sym, depth):
        spec = WorkloadSpec(n=n, seed=seed, soft=soft, sym=sym, depth=depth)
        name = spec.canonical_name()
        assert name.startswith(GEN_PREFIX)
        # repr-rendered floats parse back exactly: the name is lossless
        assert parse_gen_spec(name) == spec
