"""CI telemetry smoke: trace a bounded portfolio, read the trace back.

An end-to-end drill for the flight recorder
(docs/observability.md), meant to run on every push:

1. a bounded serial portfolio establishes the expected leaderboard;
2. the same portfolio reruns with ``--trace`` armed (2 workers, so the
   executor/queue probes fire too) — telemetry is pure observation, so
   the leaderboard must stay byte-identical to the untraced run;
3. ``repro trace report --json`` renders the trace through the real
   CLI entrypoint, and the report is schema-asserted: acceptance
   curves, move-family tables and per-walk steps present for every
   walk, the reported final cost equal to the run's.

Exit code 0 on success; an assertion failure (or a hang caught by the
CI step timeout) is a telemetry regression.  A real file — not a
``python -c`` one-liner — so the portfolio side has a stable
``__main__`` under the spawn start method.
"""

import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

sys.dont_write_bytecode = True

from repro.analysis.trace import REPORT_SCHEMA, load_trace, validate_trace
from repro.parallel import PortfolioRunner

FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))
CIRCUIT = "miller_opamp"
STARTS = 4
WORKERS = 2


def rows(result):
    return [
        (o.spec.walk_id, o.spec.engine, o.spec.seed, o.best_cost, o.ref_cost, o.status)
        for o in result.leaderboard
    ]


def render_report(trace_dir: Path) -> dict:
    """Run ``repro trace report --json`` as CI would: the real CLI."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "trace", "report", str(trace_dir), "--json"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, (
        f"trace report exited {proc.returncode}:\n{proc.stderr}"
    )
    return json.loads(proc.stdout)


def main() -> int:
    base = PortfolioRunner(CIRCUIT, starts=STARTS, overrides=FAST).run()
    assert not base.failures, "untraced run must report no failures"

    trace_dir = Path(tempfile.mkdtemp(prefix="trace-smoke-"))
    try:
        traced = PortfolioRunner(
            CIRCUIT,
            starts=STARTS,
            overrides=FAST,
            workers=WORKERS,
            trace=trace_dir,
        ).run()
        assert not traced.failures, "traced run must report no failures"
        assert rows(traced) == rows(base), (
            "telemetry perturbed the run:\n"
            f"  expected {rows(base)}\n  got      {rows(traced)}"
        )

        problems = validate_trace(load_trace(str(trace_dir)))
        assert not problems, f"trace failed validation: {problems}"

        report = render_report(trace_dir)
        assert report["schema"] == REPORT_SCHEMA, report["schema"]
        assert report["events"] > 0
        assert report["config"]["walks"] == STARTS
        assert report["result"]["cost"] == traced.cost
        walk_ids = {str(o.spec.walk_id) for o in traced.leaderboard}
        assert set(report["acceptance"]) == walk_ids, (
            f"acceptance curves missing walks: "
            f"{walk_ids - set(report['acceptance'])}"
        )
        assert report["families"], "move-family tables must not be empty"
        assert report["phases"], "time-in-phase breakdown must not be empty"
        streams = len(report["streams"])
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)

    print(
        f"trace smoke: {report['events']} events across {streams} streams, "
        f"leaderboard byte-identical to untraced, report schema {REPORT_SCHEMA} ok"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
