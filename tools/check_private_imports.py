#!/usr/bin/env python3
"""Fail on cross-package private imports inside ``src/repro``.

A statement like ``from repro.bstar.placer import _CostModel`` written
outside ``repro/bstar`` couples one package to another's internals —
exactly the reach-in that made the old portfolio ranking depend on a
placer-private cost class.  This checker walks every module under
``src/repro`` with :mod:`ast` and reports each ``from X import _name``
whose source module lives in a *different* package (directory) than the
importing file.  Dunder names (``__version__``) are exempt, as are
imports within one package — a module may share private helpers with
its own neighbors.

Run standalone (CI lint job)::

    python tools/check_private_imports.py

or through the tier-1 suite (``tests/test_private_imports.py``).
Exit code 0 means clean; 1 lists every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SRC = REPO_ROOT / "src"


def _module_parts(path: Path, src: Path) -> tuple[str, ...]:
    """Dotted-path components of a module file relative to ``src``."""
    rel = path.relative_to(src).with_suffix("")
    parts = rel.parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return parts


def _package_of(parts: tuple[str, ...], is_package: bool) -> tuple[str, ...]:
    """The package (directory) a module lives in."""
    return parts if is_package else parts[:-1]


def _resolve_from_import(
    node: ast.ImportFrom, package: tuple[str, ...]
) -> tuple[str, ...] | None:
    """Absolute dotted parts of the module a ``from``-import targets.

    Returns ``None`` for absolute imports from outside the scanned tree
    (stdlib, third-party) and for over-relative imports (left to the
    interpreter to reject).
    """
    if node.level == 0:
        return tuple(node.module.split(".")) if node.module else None
    base = package
    # level 1 is the current package; each extra level climbs one parent
    for _ in range(node.level - 1):
        if not base:
            return None
        base = base[:-1]
    if node.module:
        return base + tuple(node.module.split("."))
    return base


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (name.startswith("__") and name.endswith("__"))


def check_file(path: Path, src: Path, top: str) -> list[str]:
    """Violation messages for one module file."""
    parts = _module_parts(path, src)
    package = _package_of(parts, path.name == "__init__.py")
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        private = [a.name for a in node.names if _is_private(a.name)]
        if not private:
            continue
        target = _resolve_from_import(node, package)
        if target is None or target[:1] != (top,):
            continue  # stdlib / third-party: not ours to police
        # the imported name may itself be a submodule (from pkg import
        # _mod); either way the *source package* is the target module's
        # own directory, compared against the importer's directory
        source_pkg = target if (src.joinpath(*target)).is_dir() else target[:-1]
        if source_pkg == package:
            continue  # same package: private sharing among neighbors is fine
        rel = path.relative_to(src.parent)
        for name in private:
            violations.append(
                f"{rel}:{node.lineno}: cross-package private import: "
                f"from {'.'.join(target)} import {name}"
            )
    return violations


def scan(src: Path = DEFAULT_SRC, top: str = "repro") -> list[str]:
    """All violations under ``src/<top>``, sorted by location."""
    violations: list[str] = []
    for path in sorted((src / top).rglob("*.py")):
        violations.extend(check_file(path, src, top))
    return violations


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    src = Path(args[0]) if args else DEFAULT_SRC
    violations = scan(src)
    if violations:
        print(f"{len(violations)} cross-package private import(s):")
        for message in violations:
            print(f"  {message}")
        return 1
    print("no cross-package private imports")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
