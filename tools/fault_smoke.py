"""CI fault-injection smoke: crash a worker, quarantine a walk, finish.

A bounded end-to-end drill for the fault-tolerance machinery
(docs/parallel.md#fault-tolerance), meant to run on every push:

1. a fault-free 2-worker portfolio establishes the expected
   leaderboard;
2. the same portfolio reruns with a worker hard-crash (``die``) on one
   walk and a deterministic chunk failure (``raise`` on every attempt)
   on another — the crash must heal byte-identically via
   respawn + re-dispatch, the failing walk must be quarantined, and
   the survivors must keep their exact fault-free rows.

Exit code 0 on success; an assertion failure (or a hang caught by the
CI step timeout) is a supervision regression.  This is a real file —
not a ``python -c`` one-liner — because the spawn start method
re-imports ``__main__`` in every worker.
"""

import sys

sys.dont_write_bytecode = True

from repro.parallel import Fault, FaultPlan, PortfolioRunner

FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))
DIE_WALK = 2
FAIL_WALK = 1


def rows(result):
    return [
        (o.spec.walk_id, o.spec.engine, o.spec.seed, o.best_cost, o.ref_cost, o.status)
        for o in result.leaderboard
    ]


def main() -> int:
    base = PortfolioRunner(
        "miller_opamp", starts=4, workers=2, overrides=FAST
    ).run()
    assert not base.failures, "fault-free run must report no failures"

    plan = FaultPlan(
        [
            Fault(DIE_WALK, 0, "die"),  # transient: worker crash, attempt 0
            Fault(FAIL_WALK, 1, "raise", attempts=None),  # deterministic
        ]
    )
    faulted = PortfolioRunner(
        "miller_opamp", starts=4, workers=2, overrides=FAST, fault_plan=plan
    ).run()

    assert [f.spec.walk_id for f in faulted.failures] == [FAIL_WALK], (
        f"expected walk {FAIL_WALK} quarantined, got "
        f"{[f.spec.walk_id for f in faulted.failures]}"
    )
    expected = [row for row in rows(base) if row[0] != FAIL_WALK]
    assert rows(faulted) == expected, (
        "survivors diverged from their fault-free trajectories:\n"
        f"  expected {expected}\n  got      {rows(faulted)}"
    )
    assert f"walk {FAIL_WALK} " in faulted.summary(), "banner must name the failure"
    print("fault smoke: worker crash healed byte-identically, "
          f"walk {FAIL_WALK} quarantined, {len(expected)} survivors intact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
