"""CI distributed-tier smoke: kill a remote worker mid-run, finish exact.

A bounded end-to-end drill for the distributed execution tier
(docs/parallel.md#distributed-execution), meant to run on every push:

1. a serial portfolio establishes the expected leaderboard;
2. the same portfolio reruns with the coordinator listening on a
   loopback ephemeral port and two real worker processes connected
   over TCP — then one worker is SIGKILLed mid-run.  The coordinator
   must detect the dead lease via the missed heartbeat, re-dispatch
   the orphaned chunk to the survivor, and land a leaderboard
   byte-identical to the serial run with zero failures.

Exit code 0 on success; an assertion failure (or a hang caught by the
CI step timeout) is a lease-recovery regression.  This is a real file —
not a ``python -c`` one-liner — so the coordinator side has a stable
``__main__`` under the spawn start method.
"""

import os
import subprocess
import sys
import threading
from pathlib import Path

sys.dont_write_bytecode = True

from repro.parallel import PortfolioRunner
from repro.parallel.net import format_address

FAST = (("alpha", 0.7), ("steps_per_epoch", 20), ("t_final", 1e-2))
CIRCUIT = "miller_opamp"
STARTS = 4
#: short lease so the killed worker's chunk is reclaimed quickly
LEASE_S = 1.5
#: kill after this many progress events — far enough in for both
#: workers to hold leases, far enough out that work remains
KILL_AFTER_EVENTS = 3


def rows(result):
    return [
        (o.spec.walk_id, o.spec.engine, o.spec.seed, o.best_cost, o.ref_cost, o.status)
        for o in result.leaderboard
    ]


def spawn_worker(address, name: str) -> subprocess.Popen:
    code = (
        "import sys\n"
        "from repro.parallel.remote import run_worker\n"
        f"sys.exit(run_worker({format_address(address)!r}, name={name!r}))\n"
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen([sys.executable, "-c", code], env=env)


def main() -> int:
    base = PortfolioRunner(CIRCUIT, starts=STARTS, overrides=FAST).run()
    assert not base.failures, "serial run must report no failures"

    procs: list[subprocess.Popen] = []
    events = 0
    killed = threading.Event()

    def on_listen(address) -> None:
        procs.extend(spawn_worker(address, f"smoke-w{i}") for i in range(2))

    def on_event(event) -> None:
        nonlocal events
        events += 1
        if events == KILL_AFTER_EVENTS and not killed.is_set():
            killed.set()
            procs[0].kill()  # hard death: no FIN, the lease must expire

    remote = PortfolioRunner(
        CIRCUIT,
        starts=STARTS,
        overrides=FAST,
        listen=("127.0.0.1", 0),
        lease_timeout=LEASE_S,
        on_listen=on_listen,
        on_event=on_event,
    ).run()

    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)

    assert killed.is_set(), "run finished before the kill fired — raise STARTS"
    assert not remote.failures, (
        f"worker death must heal, got failures: "
        f"{[f.spec.walk_id for f in remote.failures]}"
    )
    assert rows(remote) == rows(base), (
        "distributed run diverged from serial after worker death:\n"
        f"  expected {rows(base)}\n  got      {rows(remote)}"
    )
    survivor = procs[1].returncode
    assert survivor == 0, f"surviving worker exited {survivor}, expected 0"
    print(
        "remote smoke: SIGKILLed worker's lease reclaimed, "
        f"{len(rows(base))} rows byte-identical to serial, survivor exited clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
