"""Docs checker: executable README + docs pages + no dead links.

Two honesty checks, wired into CI (`.github/workflows/ci.yml`) and the
tier-1 suite (`tests/test_docs.py`):

1. **Doc code blocks run.**  Every fenced ```python block in
   `README.md` *and* `docs/*.md` is executed, top to bottom, in one
   shared namespace per file (so later blocks may build on earlier
   imports, but pages never leak state into each other).  If an
   example rots, CI goes red — the docs can never drift from the
   library again.  Add ``<!-- docs-check: skip -->`` on the line
   directly above a fence to exclude a block (e.g. pseudocode, or
   examples that spawn worker processes / touch absent run dirs).
2. **No dead relative links.**  Every markdown link in `README.md` and
   `docs/*.md` that points at a file (not http/https/mailto/anchor) is
   resolved against the linking file; missing targets fail.

Run:  PYTHONPATH=src python tools/check_docs.py [--no-exec]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: fenced python blocks, with an optional skip marker above the fence
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_SKIP_MARKER = "<!-- docs-check: skip -->"

#: inline markdown links [text](target); images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:", "#")


def python_blocks(markdown: str) -> list[tuple[int, str]]:
    """(1-based start line, code) for every non-skipped python fence."""
    blocks = []
    for match in _FENCE.finditer(markdown):
        preceding = markdown[: match.start()].rstrip().splitlines()
        if preceding and preceding[-1].strip() == _SKIP_MARKER:
            continue
        line = markdown.count("\n", 0, match.start()) + 2  # code starts after ```
        blocks.append((line, match.group(1)))
    return blocks


def run_doc_blocks(path: Path) -> list[str]:
    """Execute one file's python blocks; one error string per failure.

    Blocks share the file's namespace (later blocks may build on
    earlier imports); each file starts fresh.
    """
    errors = []
    namespace: dict = {"__name__": "__docs__"}
    for line, code in python_blocks(path.read_text()):
        try:
            exec(compile(code, f"{path.name}:{line}", "exec"), namespace)
        except Exception as exc:  # report and keep checking later blocks
            errors.append(f"{path.name}:{line}: block raised {exc!r}")
    return errors


def run_readme_blocks(readme: Path) -> list[str]:
    """Execute the README's python blocks; one error string per failure."""
    return run_doc_blocks(readme)


_ANY_FENCE = re.compile(r"```.*?```", re.DOTALL)


def dead_links(files: list[Path]) -> list[str]:
    """Relative links whose targets do not exist, one message each.

    Fenced code blocks are stripped first: link-shaped code like
    ``handlers[0](event)`` is not a markdown link.
    """
    errors = []
    for path in files:
        for match in _LINK.finditer(_ANY_FENCE.sub("", path.read_text())):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO)}: dead link -> {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-exec",
        action="store_true",
        help="only check links; skip executing README code blocks",
    )
    args = parser.parse_args(argv)

    readme = REPO / "README.md"
    doc_files = [readme, *sorted((REPO / "docs").glob("*.md"))]
    errors = dead_links([f for f in doc_files if f.exists()])
    if not readme.exists():
        errors.append("README.md is missing")
    elif not args.no_exec:
        for path in doc_files:
            if path.exists():
                errors.extend(run_doc_blocks(path))

    for message in errors:
        print(f"docs-check: {message}", file=sys.stderr)
    if not errors:
        what = "links" if args.no_exec else "links + code blocks"
        print(f"docs-check: {len(doc_files)} files OK ({what})")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
