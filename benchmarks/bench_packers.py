"""Ablation — sequence-pair packer scaling: O(n^2) vs O(n log n).

The paper quotes O(G * n log log n) per evaluation via a van Emde Boas
priority queue [26]; we substitute a Fenwick-tree weighted-LCS packer
(see DESIGN.md).  This bench shows the asymptotic gap against the
textbook longest-path packer on growing module counts.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.geometry import Module, ModuleSet
from repro.seqpair import SequencePair, pack_lcs, pack_longest_path


def problem(n: int, seed: int = 0):
    rng = random.Random(seed)
    mods = ModuleSet.of(
        [
            Module.hard(f"m{i}", rng.uniform(1, 10), rng.uniform(1, 10), rotatable=False)
            for i in range(n)
        ]
    )
    sp = SequencePair.random(mods.names(), rng)
    return sp, mods


@pytest.mark.parametrize("n", [20, 60, 180])
def test_bench_lcs_packer(benchmark, n):
    sp, mods = problem(n)
    benchmark(lambda: pack_lcs(sp, mods))


@pytest.mark.parametrize("n", [20, 60, 180])
def test_bench_longest_path_packer(benchmark, n):
    sp, mods = problem(n)
    benchmark(lambda: pack_longest_path(sp, mods))


def test_scaling_report(emit, benchmark):
    """The crossover table: per-evaluation time of both packers."""

    def sweep():
        rows = []
        for n in (10, 30, 100, 300):
            sp, mods = problem(n)
            reps = max(1, 3000 // n)
            t0 = time.perf_counter()
            for _ in range(reps):
                pack_lcs(sp, mods)
            t_fast = (time.perf_counter() - t0) / reps
            t0 = time.perf_counter()
            for _ in range(reps):
                pack_longest_path(sp, mods)
            t_slow = (time.perf_counter() - t0) / reps
            rows.append((n, t_fast, t_slow))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'n':>5} {'LCS (us)':>12} {'longest-path (us)':>18} {'ratio':>7}"]
    for n, t_fast, t_slow in rows:
        lines.append(
            f"{n:>5} {t_fast * 1e6:>12.1f} {t_slow * 1e6:>18.1f} "
            f"{t_slow / t_fast:>7.1f}"
        )
    emit("packer_scaling", "\n".join(lines))
    # asymptotic shape: the O(n^2) packer falls behind at large n
    assert rows[-1][2] > rows[-1][1]
