"""Ablation — thermal balance of symmetric vs. random placement.

Section II: "the thermally-sensitive device couples should be placed
symmetrically relative to the thermally-radiating devices.  Since the
symmetrically placed sensitive components are equidistant from the
radiating component(s), they see roughly identical ambient temperatures
and no temperature induced mismatch results."

We build a cell with a power device on the symmetry axis and a sensitive
differential pair, place it (a) with the symmetry-aware sequence-pair
placer and (b) with an area-only placer ignoring the constraint, and
compare the pairs' temperature mismatch under the radial thermal model.
"""

from __future__ import annotations

from repro.analysis import ThermalModel, render_field
from repro.circuit import SymmetryGroup
from repro.geometry import Module, ModuleSet
from repro.seqpair import PlacerConfig, SequencePairPlacer


def testcase():
    mods = ModuleSet.of(
        [
            Module.hard("out_dev", 8.0, 8.0, rotatable=False),  # hot output device
            Module.hard("in_a", 4.0, 5.0, rotatable=False),
            Module.hard("in_b", 4.0, 5.0, rotatable=False),
            Module.hard("mir_a", 5.0, 3.0, rotatable=False),
            Module.hard("mir_b", 5.0, 3.0, rotatable=False),
            Module.hard("bias", 6.0, 4.0, rotatable=False),
        ]
    )
    group = SymmetryGroup(
        "diff", pairs=(("in_a", "in_b"), ("mir_a", "mir_b")), self_symmetric=("out_dev",)
    )
    model = ThermalModel(power={"out_dev": 20.0, "bias": 3.0})
    return mods, group, model


def test_thermal_balance(emit, benchmark):
    mods, group, model = testcase()

    def run_both():
        symmetric = SequencePairPlacer(
            mods, (group,), config=PlacerConfig(seed=2, alpha=0.9, steps_per_epoch=40)
        ).run()
        unaware = SequencePairPlacer(
            mods, (), config=PlacerConfig(seed=2, alpha=0.9, steps_per_epoch=40)
        ).run()
        return symmetric, unaware

    symmetric, unaware = benchmark.pedantic(run_both, rounds=1, iterations=1)

    sym_mm = model.group_mismatch(group, symmetric.placement)
    una_mm = model.group_mismatch(group, unaware.placement)

    # The hot device sits on the group's axis in the symmetric placement,
    # so pair members are equidistant from it.  Only the off-axis bias
    # source contributes residual mismatch.
    bias_only = ThermalModel(power={"out_dev": 20.0})
    sym_mm_main = bias_only.group_mismatch(group, symmetric.placement)
    assert sym_mm_main <= 1e-6, "axis radiator must induce zero mismatch"

    lines = [
        "thermal mismatch of the sensitive pairs (radial source model):",
        "",
        f"{'placement':24}{'worst pair dT':>14}",
        f"{'symmetry-aware':24}{sym_mm:>12.4f} C",
        f"{'constraint-ignoring':24}{una_mm:>12.4f} C",
        "",
        "temperature field of the symmetry-aware placement:",
        render_field(model, symmetric.placement, width=48, height=12),
    ]
    emit("thermal_balance", "\n".join(lines))

    assert una_mm > sym_mm_main