"""Standard-suite quality sweep — run the grid, diff the baseline.

Thin standalone client over :mod:`repro.analysis.sweep` (the CLI's
``repro sweep`` subcommand wraps the same module).  A run:

1. executes the declared tier grid — {committed Bookshelf fixtures +
   ``gen:`` families} x {every annealing engine, serial + portfolio} —
   under fixed seeds and step budgets;
2. writes the full matrix (quality + timing) to
   ``benchmarks/out/quality_matrix_<tier>.json``;
3. diffs the quality fields against the committed baseline
   ``benchmarks/quality_matrix.json`` and **exits 3 on regression**
   (worse ref-cost beyond tolerance, new violations, a formerly
   converging cell failing, or a baseline cell left uncovered);
4. appends a ``mode: "sweep"`` summary entry to the
   ``BENCH_perf_kernel.json`` trajectory (skipped with ``--no-write``
   or when the diff failed — a regressed run never becomes history).

Re-baselining is deliberate: run with ``--write-baseline`` and commit
the refreshed ``benchmarks/quality_matrix.json`` with an audit note
explaining the quality change (see docs/benchmarks.md).

Usage::

    PYTHONPATH=src python benchmarks/sweep.py --quick            # CI tier
    PYTHONPATH=src python benchmarks/sweep.py                    # full tier
    PYTHONPATH=src python benchmarks/sweep.py --quick --no-write # read-only
    PYTHONPATH=src python benchmarks/sweep.py --quick --write-baseline
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.sweep import (
    diff_matrices,
    format_matrix,
    load_matrix,
    matrix_summary,
    run_sweep,
    validate_matrix,
    write_matrix,
)

BENCH_DIR = Path(__file__).resolve().parent
#: the committed quick-tier baseline (the CI gate)
BASELINE_PATH = BENCH_DIR / "quality_matrix.json"
OUT_DIR = BENCH_DIR / "out"


def default_baseline(tier: str) -> Path:
    """The baseline a tier gates against.  Budgets (and therefore cell
    config hashes) differ per tier, so tiers never share a baseline:
    quick uses the committed ``quality_matrix.json``; other tiers use a
    sibling ``quality_matrix_<tier>.json``."""
    return BASELINE_PATH if tier == "quick" else (
        BENCH_DIR / f"quality_matrix_{tier}.json"
    )

#: exit code of a failed quality gate (run_all.py's regression contract)
REGRESSION_EXIT = 3


def _append_trajectory(matrix: dict) -> None:
    """One ``mode: "sweep"`` summary entry in the tracked trajectory."""
    sys.path.insert(0, str(BENCH_DIR))
    from bench_perf_kernel import JSON_PATH, record_trajectory_entry

    record_trajectory_entry("sweep", matrix_summary(matrix), write=True)
    print(f"trajectory entry appended: {JSON_PATH}")


def run_and_gate(
    *,
    tier: str = "quick",
    baseline_path: Path | None = None,
    write: bool = True,
    write_baseline: bool = False,
) -> int:
    """Run a tier, diff it, optionally record it; returns the exit code."""
    if baseline_path is None:
        baseline_path = default_baseline(tier)
    matrix = run_sweep(tier)
    problems = validate_matrix(matrix)
    assert not problems, f"emitted matrix is schema-invalid: {problems}"
    out_path = write_matrix(matrix, OUT_DIR / f"quality_matrix_{tier}.json")
    print(format_matrix(matrix))
    print(f"matrix written: {out_path}")

    if write_baseline:
        write_matrix(matrix, baseline_path, canonical=True)
        print(f"baseline rewritten: {baseline_path} — commit it with an "
              "audit note describing the intentional quality change")
        if write:
            _append_trajectory(matrix)
        return 0

    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; run with "
              "--write-baseline to create it", file=sys.stderr)
        return 2
    baseline = load_matrix(baseline_path)
    if baseline.get("tier") != tier:
        print(
            f"baseline {baseline_path} records tier "
            f"{baseline.get('tier')!r}, not {tier!r}; tiers use different "
            "budgets and never share a baseline", file=sys.stderr,
        )
        return 2
    diff = diff_matrices(baseline, matrix)
    print(diff.summary())
    if not diff.ok:
        # mirror the perf guard: a regressed run never enters history
        return REGRESSION_EXIT
    if write:
        _append_trajectory(matrix)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="the bounded CI tier (fixtures + 100-module gen families); "
        "default is the full tier (adds 500/1000-module sizes)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="do not append a mode:'sweep' entry to BENCH_perf_kernel.json",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite benchmarks/quality_matrix.json from this run "
        "(deliberate re-baseline; skip the gate)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline matrix to diff against (default: the committed "
        "baseline of the selected tier)",
    )
    args = parser.parse_args(argv)
    return run_and_gate(
        tier="quick" if args.quick else "full",
        baseline_path=args.baseline,
        write=not args.no_write,
        write_baseline=args.write_baseline,
    )


if __name__ == "__main__":
    raise SystemExit(main())
