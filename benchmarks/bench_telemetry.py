"""Telemetry overhead — what does the flight recorder cost the hot loop?

The recorder (docs/observability.md) is wired into the incremental
annealer's step loop behind a hoisted ``recorder.enabled`` guard, so a
run that never asks for a trace should pay nothing measurable, and a
sampled trace (one ``anneal.sample`` event every 256 steps plus a
per-chunk summary) should stay within a few percent.  Two timings on
the same random-net problem as ``bench_perf_kernel.py``:

* **off** — :class:`IncrementalAnnealer` with the default null
  recorder; the budget is <=1% against the most recent perf-kernel
  trajectory entry of the same mode (``overhead_disabled_pct``).
* **sampled** — the same walk with a :class:`TraceRecorder` attached
  at the default sample interval, writing JSONL into a scratch
  directory; the within-run budget is <=3%
  (``overhead_sampled_pct``).

Both walks must land the exact same best cost: telemetry is pure
observation, it draws nothing from the rng.

Results are **appended** to ``BENCH_perf_kernel.json`` as
``mode: "telemetry"`` entries; ``incremental_steps_per_sec`` per row
lets ``check_regression`` gate telemetry entries against each other.

Run standalone:   python benchmarks/bench_telemetry.py [--quick] [--no-write]
Run under pytest: pytest benchmarks/bench_telemetry.py -q
"""

from __future__ import annotations

import argparse
import random
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from bench_perf_kernel import (
    JSON_PATH,
    load_trajectory,
    problem,
    record_trajectory_entry,
)

from repro.anneal import GeometricSchedule, IncrementalAnnealer
from repro.bstar import BStarPlacerConfig
from repro.perf import IncrementalBStarEngine
from repro.telemetry import DEFAULT_SAMPLE_INTERVAL, TraceRecorder

#: disabled telemetry vs the perf-kernel trajectory baseline
DISABLED_BUDGET_PCT = 1.0
#: sampled telemetry vs the disabled walk, measured within one run
SAMPLED_BUDGET_PCT = 3.0


def measure(
    n: int, config: BStarPlacerConfig, repeats: int, trace_dir: Path
) -> dict:
    """Steps/sec with telemetry off and sampled on.

    Rounds interleave the two walks and the sampled overhead is the
    *median of the per-round off/traced ratios*, so slow machine drift
    hits both sides of each ratio equally instead of whichever walk
    happened to run during the quiet moment.  The absolute steps/s
    columns stay best-of-``repeats`` (the usual noise-floor estimator).
    """
    modules, nets = problem(n)
    schedule = GeometricSchedule(
        t_initial=config.t_initial,
        t_final=config.t_final,
        alpha=config.alpha,
        steps_per_epoch=config.steps_per_epoch,
    )

    def run_once(recorder) -> tuple[float, float]:
        rng = random.Random(config.seed)
        engine = IncrementalBStarEngine(modules, nets, (), config)
        engine.reset(engine.initial_state(rng))
        annealer = IncrementalAnnealer(engine, schedule, rng)
        annealer.set_recorder(recorder)
        t0 = time.perf_counter()
        outcome = annealer.run()
        elapsed = time.perf_counter() - t0
        return outcome.stats.steps / elapsed, outcome.best_cost

    recorder = TraceRecorder(
        str(trace_dir / f"n{n}"), sample_interval=DEFAULT_SAMPLE_INTERVAL
    )
    off_sps = traced_sps = 0.0
    off_best = traced_best = None
    ratios = []
    for _ in range(repeats):
        off_round, off_best = run_once(None)
        off_sps = max(off_sps, off_round)
        traced_round, traced_best = run_once(
            recorder.bind(walk=0, engine="bstar", chunk_start=0)
        )
        traced_sps = max(traced_sps, traced_round)
        ratios.append(off_round / traced_round)
    recorder.close()

    assert off_best == traced_best, (
        f"telemetry perturbed the walk: {off_best} vs {traced_best}"
    )
    return {
        "modules": n,
        "nets": len(nets),
        "incremental_steps_per_sec": round(off_sps, 1),
        "traced_steps_per_sec": round(traced_sps, 1),
        "overhead_sampled_pct": round(100.0 * (statistics.median(ratios) - 1.0), 2),
        "best_cost_identical": True,
    }


def disabled_overhead(runs: list[dict], mode: str, trajectory: list[dict]) -> None:
    """Fill ``overhead_disabled_pct`` per row against the most recent
    perf-kernel entry of the same schedule ``mode`` and module count.

    Cross-entry wall-clock only means something on the tracked machine,
    so rows without a comparable baseline keep ``None``.
    """
    for row in runs:
        baseline = None
        for old in reversed(trajectory):
            if old.get("mode") != mode:
                continue
            for old_run in old.get("runs", []):
                if old_run.get("modules") == row["modules"]:
                    baseline = old_run.get("incremental_steps_per_sec")
                    break
            if baseline:
                break
        row["overhead_disabled_pct"] = (
            round(100.0 * (baseline / row["incremental_steps_per_sec"] - 1.0), 2)
            if baseline
            else None
        )


def run(fast: bool = False, write: bool = False) -> dict:
    """Measure both sizes; optionally append a ``mode: telemetry`` entry."""
    if fast:
        # same schedule as bench_perf_kernel's fast tier so the
        # disabled-overhead diff compares like against like
        config = BStarPlacerConfig(seed=0, alpha=0.85, t_final=1e-3)
        sizes, repeats = (30, 100), 5
    else:
        config = BStarPlacerConfig(seed=0)
        sizes, repeats = (50, 100), 5

    trace_dir = Path(tempfile.mkdtemp(prefix="bench-telemetry-"))
    try:
        runs = [measure(n, config, repeats, trace_dir) for n in sizes]
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)
    disabled_overhead(
        runs, "fast" if fast else "full", load_trajectory()["trajectory"]
    )

    recorded = record_trajectory_entry(
        "telemetry",
        {
            "sample_interval": DEFAULT_SAMPLE_INTERVAL,
            "runs": runs,
        },
        write=write,
        gate=True,
    )
    entry = recorded["entry"]

    lines = [
        f"{'modules':>8} {'off/s':>10} {'sampled/s':>10} "
        f"{'sampled oh':>11} {'disabled oh':>12}"
    ]
    for row in entry["runs"]:
        disabled = (
            f"{row['overhead_disabled_pct']:>+11.2f}%"
            if row["overhead_disabled_pct"] is not None
            else f"{'—':>12}"
        )
        lines.append(
            f"{row['modules']:>8} {row['incremental_steps_per_sec']:>10,.0f} "
            f"{row['traced_steps_per_sec']:>10,.0f} "
            f"{row['overhead_sampled_pct']:>+10.2f}% {disabled}"
        )

    return {
        "benchmark": "telemetry_overhead",
        "mode": entry["mode"],
        "runs": entry["runs"],
        "entry": entry,
        "appended": recorded["appended"],
        "regressions": recorded["regressions"],
        "table": "\n".join(lines),
    }


def test_telemetry_overhead(emit, benchmark):
    """Smoke tier: sampled telemetry must stay cheap and change nothing.
    The within-run bound is doubled under pytest — CI boxes jitter —
    while the recorded trajectory entry carries the honest number."""
    results = benchmark.pedantic(lambda: run(fast=True), rounds=1, iterations=1)
    emit("telemetry_overhead", results["table"])
    for row in results["runs"]:
        assert row["best_cost_identical"]
        assert row["overhead_sampled_pct"] < 2 * SAMPLED_BUDGET_PCT


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="perf-kernel fast schedule (for CI)"
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report only; do not append to BENCH_perf_kernel.json",
    )
    args = parser.parse_args(argv)
    outcome = run(fast=args.quick, write=not args.no_write)
    print(outcome["table"])
    if outcome["appended"]:
        print(f"\nappended trajectory entry: {JSON_PATH}")
    for problem_msg in outcome["regressions"]:
        print(f"REGRESSION (entry not appended): {problem_msg}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
