"""Experiment T1 — Table I: enhanced vs. regular shape functions.

Regenerates, for all six circuits, the paper's Table I columns: area
usage (bounding rect of the smallest shape / total module area) and
runtime for ESF and RSF, plus the area improvement.

Paper shape to hold: ESF area usage <= RSF on every circuit, a few
percentage points better on average, at roughly an order of magnitude
more runtime.  (Absolute numbers differ — our circuits are synthetic
stand-ins with the paper's module counts; see DESIGN.md.)
"""

from __future__ import annotations

import pytest

from repro.circuit import table1_circuit, table1_circuits
from repro.shapes import DeterministicConfig, DeterministicPlacer

HEADER = (
    f"{'Experiment':<16}{'# of':>6} | {'ESF':>10}{'':>9} | {'RSF':>10}{'':>9} | "
    f"{'Area im-':>9}\n"
    f"{'Criterion':<16}{'mods':>6} | {'Area use':>10}{'Time':>9} | "
    f"{'Area use':>10}{'Time':>9} | {'provement':>9}"
)


def run_flow(circuit, enhanced: bool):
    placer = DeterministicPlacer(circuit, DeterministicConfig(enhanced=enhanced))
    result = placer.run()
    assert result.placement.is_overlap_free()
    assert circuit.constraints().violations(result.placement) == []
    return result


def test_table1_regeneration(emit, benchmark):
    rows = [HEADER]
    total_esf = total_rsf = 0.0
    circuits = table1_circuits()

    def full_table():
        results = {}
        for circuit in circuits:
            results[circuit.name] = (
                run_flow(circuit, enhanced=True),
                run_flow(circuit, enhanced=False),
            )
        return results

    results = benchmark.pedantic(full_table, rounds=1, iterations=1)

    for circuit in circuits:
        esf, rsf = results[circuit.name]
        improvement = (rsf.area_usage - esf.area_usage) * 100.0
        total_esf += esf.area_usage
        total_rsf += rsf.area_usage
        rows.append(
            f"{circuit.name:<16}{circuit.n_modules:>6} | "
            f"{100 * esf.area_usage:>9.2f}%{esf.runtime_s:>8.2f}s | "
            f"{100 * rsf.area_usage:>9.2f}%{rsf.runtime_s:>8.2f}s | "
            f"{improvement:>8.2f}%"
        )
        # Table-I shape: ESF never worse than RSF.
        assert esf.area_usage <= rsf.area_usage + 1e-9, circuit.name

    avg = (total_rsf - total_esf) / len(circuits) * 100.0
    rows.append(
        f"\naverage improvement: {avg:.2f} percentage points "
        "(paper: 4.4% average, growing with module count)"
    )
    emit("table1", "\n".join(rows))
    assert avg > 0.0


@pytest.mark.parametrize("enhanced", [True, False], ids=["esf", "rsf"])
def test_bench_folded_cascode(benchmark, enhanced):
    """Runtime of one full deterministic placement (the Table-I 'Time'
    column, on the 22-module circuit)."""
    circuit = table1_circuit("folded_cascode")
    benchmark(lambda: run_flow(circuit, enhanced))
