"""Fault-tolerance overhead — what does supervision cost when nothing fails?

The fault machinery (chunk supervisor, retry accounting, fault-plan
arming, failure bookkeeping — see docs/parallel.md#fault-tolerance)
sits on the hot path of *every* portfolio run, so its fault-free cost
must be measured.  Three timings on ``miller_opamp``, serial, warm
caches, best of ``ROUNDS``:

* **raw** — the minimal chunk loop: the same specs and chunk sizes the
  runner would use, driven straight through ``_execute`` with no
  supervisor, no retry bookkeeping, no leaderboard.  The floor.
* **supervised** — ``PortfolioRunner.run()``, fault-free.  The delta
  against *raw* is the supervision overhead (acceptance: < 2%).
* **persisted** — the same run with a ``run_dir``: adds one atomic
  checkpoint write (pickle + fsync + rename) per chunk, reported
  separately because durability is opt-in.

A recovery check then injects a deterministic chunk failure and
asserts the run degrades to the survivors' exact fault-free rows.

Results are **appended** to ``BENCH_perf_kernel.json`` as
``mode: "faults"`` entries (the regression guard in ``run_all.py``
only compares entries of equal mode).

Run standalone:   python benchmarks/bench_faults.py [--quick] [--no-write]
Run under pytest: pytest benchmarks/bench_faults.py -q
"""

from __future__ import annotations

import argparse
import shutil
import statistics
import tempfile
import time
from math import ceil

from bench_perf_kernel import JSON_PATH, record_trajectory_entry

from repro.parallel import (
    Fault,
    FaultPlan,
    PortfolioRunner,
    WalkSpec,
    build_placer_by_name,
    walk_total_steps,
)
from repro.parallel.engines import reference_cost_model
from repro.parallel.jobs import ChunkTask
from repro.parallel.runner import _DEFAULT_ROUNDS, _execute
from repro.workloads import resolve_workload

CIRCUIT = "miller_opamp"
ENGINES = ("bstar", "hbtree")
STARTS = 4
OVERRIDES = (("alpha", 0.8), ("t_final", 1e-2))
ROUNDS = 12


def _specs() -> list[WalkSpec]:
    return [
        WalkSpec(i, CIRCUIT, ENGINES[i % len(ENGINES)], i, OVERRIDES)
        for i in range(STARTS)
    ]


def _raw_run() -> int:
    """The un-supervised floor: every walk's chunks straight through
    ``_execute``, plus the per-walk finalize + reference scoring the
    runner has always done — identical work, none of the fault
    machinery (no supervisor, no retry accounting, no failure
    bookkeeping)."""
    ref = reference_cost_model(resolve_workload(CIRCUIT))
    steps = 0
    board = []
    for spec in _specs():
        total = walk_total_steps(spec)
        chunk = max(1, ceil(total / _DEFAULT_ROUNDS))
        checkpoint = None
        while checkpoint is None or not checkpoint.finished:
            result = _execute(ChunkTask(spec=spec, checkpoint=checkpoint, max_steps=chunk))
            checkpoint = result.checkpoint
        placement = build_placer_by_name(spec).finalize(checkpoint.best_state)
        board.append((ref.evaluate_placement(placement), spec.walk_id))
        steps += checkpoint.step
    board.sort()
    return steps


def _supervised_run(run_dir: str | None = None) -> int:
    result = PortfolioRunner(
        CIRCUIT, ENGINES, starts=STARTS, overrides=OVERRIDES, run_dir=run_dir
    ).run()
    assert not result.failures
    return result.total_steps


def _paired_timings(fns: dict, rounds: int) -> tuple[dict, dict]:
    """``({name: (steps, fastest elapsed)}, {name: overhead ratio})``.

    Scheduler jitter on a small container (±10% on a ~0.3s run) dwarfs
    the few-percent effect being measured, so block timings lie.  Two
    defenses: variants are *interleaved* within each round, with the
    order rotated per round so no variant always rides the same cache /
    scheduling position, and the overhead versus the first variant is
    the **median of per-round ratios** — pairing cancels the slow drift
    a best-of comparison across variants cannot."""
    names = list(fns)
    best = {name: (0, float("inf")) for name in names}
    samples: dict = {name: [] for name in names}
    for round_index in range(rounds):
        order = names[round_index % len(names):] + names[:round_index % len(names)]
        for name in order:
            started = time.perf_counter()
            steps = fns[name]()
            elapsed = time.perf_counter() - started
            samples[name].append(elapsed)
            if elapsed < best[name][1]:
                best[name] = (steps, elapsed)
    baseline = samples[names[0]]
    ratios = {
        name: statistics.median(t / b for t, b in zip(samples[name], baseline))
        for name in names[1:]
    }
    return best, ratios


def _recovery_check() -> dict:
    """Degraded-run correctness: one deterministically failing walk must
    quarantine while every survivor keeps its fault-free row."""

    def rows(result):
        return [
            (o.spec.walk_id, o.best_cost, o.ref_cost, o.status)
            for o in result.leaderboard
        ]

    base = PortfolioRunner(CIRCUIT, ENGINES, starts=STARTS, overrides=OVERRIDES).run()
    faulted = PortfolioRunner(
        CIRCUIT,
        ENGINES,
        starts=STARTS,
        overrides=OVERRIDES,
        fault_plan=FaultPlan([Fault(1, 1, "raise", attempts=None)]),
    ).run()
    assert [f.spec.walk_id for f in faulted.failures] == [1]
    assert rows(faulted) == [row for row in rows(base) if row[0] != 1]
    return {"quarantined": 1, "survivors_identical": True}


def run(fast: bool = False, write: bool = False) -> dict:
    """Measure; optionally append a ``mode: faults`` trajectory entry."""
    rounds = 1 if fast else ROUNDS
    _supervised_run()  # warm the per-process circuit/placer caches

    def persisted() -> int:
        run_dir = tempfile.mkdtemp(prefix="bench_faults_")
        try:
            return _supervised_run(run_dir)
        finally:
            shutil.rmtree(run_dir, ignore_errors=True)

    timings, ratios = _paired_timings(
        {"raw": _raw_run, "supervised": _supervised_run, "persisted": persisted},
        rounds,
    )
    raw_steps, raw_s = timings["raw"]
    sup_steps, sup_s = timings["supervised"]
    per_steps, per_s = timings["persisted"]

    raw_sps = raw_steps / raw_s
    sup_sps = sup_steps / sup_s
    per_sps = per_steps / per_s
    overhead_pct = 100.0 * (ratios["supervised"] - 1.0)
    persist_pct = 100.0 * (ratios["persisted"] - 1.0)

    results = {
        "circuit": CIRCUIT,
        "raw_steps_per_sec": round(raw_sps, 1),
        "supervised_steps_per_sec": round(sup_sps, 1),
        "persisted_steps_per_sec": round(per_sps, 1),
        "supervision_overhead_pct": round(overhead_pct, 2),
        "persistence_overhead_pct": round(persist_pct, 2),
        "recovery": _recovery_check(),
    }

    recorded = record_trajectory_entry(
        "faults",
        {
            "circuit": CIRCUIT,
            "engines": list(ENGINES),
            "starts": STARTS,
            "steps": sup_steps,
            "runs": [
                {
                    "variant": "raw",
                    "steps": raw_steps,
                    "steps_per_sec": results["raw_steps_per_sec"],
                },
                {
                    "variant": "supervised",
                    "steps": sup_steps,
                    "steps_per_sec": results["supervised_steps_per_sec"],
                },
                {
                    "variant": "persisted",
                    "steps": per_steps,
                    "steps_per_sec": results["persisted_steps_per_sec"],
                },
            ],
            "supervision_overhead_pct": results["supervision_overhead_pct"],
            "persistence_overhead_pct": results["persistence_overhead_pct"],
        },
        write=write,
    )

    results["entry"] = recorded["entry"]
    results["appended"] = recorded["appended"]
    results["table"] = table(results)
    return results


def table(results: dict) -> str:
    lines = [
        f"fault-tolerance overhead on {results['circuit']} (serial, fault-free)",
        f"{'variant':<12} {'steps/s':>10} {'vs raw':>8}",
        f"{'raw':<12} {results['raw_steps_per_sec']:>10,.0f} {'—':>8}",
        f"{'supervised':<12} {results['supervised_steps_per_sec']:>10,.0f} "
        f"{results['supervision_overhead_pct']:>+7.2f}%",
        f"{'persisted':<12} {results['persisted_steps_per_sec']:>10,.0f} "
        f"{results['persistence_overhead_pct']:>+7.2f}%",
        "recovery: 1 walk quarantined, survivors byte-identical",
    ]
    return "\n".join(lines)


def test_fault_overhead_report(emit, benchmark):
    """Smoke tier: supervision must be cheap and recovery exact.  The
    bound is looser than the tracked acceptance (< 2%) because CI boxes
    are noisy; the trajectory entry records the real number."""
    results = benchmark.pedantic(lambda: run(fast=True), rounds=1, iterations=1)
    emit("fault_overhead", results["table"])
    assert results["recovery"]["survivors_identical"]
    assert results["supervision_overhead_pct"] < 10.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="single timed round (for CI)"
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report only; do not append to BENCH_perf_kernel.json",
    )
    args = parser.parse_args(argv)
    outcome = run(fast=args.quick, write=not args.no_write)
    print(outcome["table"])
    if outcome["appended"]:
        print(f"\nappended trajectory entry: {JSON_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
