"""Portfolio scaling — aggregate annealing steps/sec vs worker count.

Measures the :class:`repro.parallel.PortfolioRunner` three ways on
``miller_opamp`` with one fixed total step budget:

* **single** — one walk, one process: the pre-portfolio baseline;
* **portfolio xN** — the same budget split over ``STARTS`` multi-engine
  walks at 1, 2 and 4 workers: aggregate steps/s (total steps / wall
  time) shows process scaling, and the leaderboard shows the
  solution-quality side of multi-start;
* **quality check** — for every engine, the portfolio's per-engine best
  cost is compared against a full single run of that engine (the
  acceptance bar: portfolio best <= single-run best under the same
  total budget).

Scaling efficiency is honest about the hardware: the entry records
``cpu_count`` next to the measured speedups, because 4 workers cannot
beat 1 on a single-core container — interpret trajectory entries
accordingly.

Results are **appended** to the same ``BENCH_perf_kernel.json``
trajectory that tracks the kernel benchmarks (``mode: "parallel"``
entries; the steps/s regression guard in ``run_all.py`` only compares
entries of equal mode, so parallel entries never gate kernel ones and
vice versa).

Run standalone:   python benchmarks/bench_parallel.py [--quick]
Run under pytest: pytest benchmarks/bench_parallel.py -q
"""

from __future__ import annotations

import argparse
import multiprocessing
import pickle
import time

from bench_perf_kernel import JSON_PATH, record_trajectory_entry

from repro.parallel import ENGINE_NAMES, PortfolioRunner, build_placer_by_name, WalkSpec
from repro.workloads import resolve_workload

CIRCUIT = "miller_opamp"
STARTS = 8
WORKER_COUNTS = (1, 2, 4)
#: portfolio acceptance bar from the issue: aggregate steps/s at 4
#: workers vs 1 worker (only reachable with >= 4 physical cores)
SCALING_TARGET = 2.5


def _single_run(engine: str, seed: int, overrides) -> tuple[float, float, int]:
    """One full walk of ``engine`` (cost, elapsed, steps) — the baseline."""
    placer = build_placer_by_name(
        WalkSpec(walk_id=0, circuit=CIRCUIT, engine=engine, seed=seed, overrides=overrides)
    )
    t0 = time.perf_counter()
    result = placer.run()
    elapsed = time.perf_counter() - t0
    return result.cost, elapsed, result.stats.steps


def measure(
    overrides=(),
    *,
    workers=WORKER_COUNTS,
    starts: int = STARTS,
    engines=ENGINE_NAMES,
    check_quality: bool = True,
) -> dict:
    """Portfolio scaling plus the per-engine quality comparison."""
    singles = {}
    total_budget = 0
    for i, engine in enumerate(engines):
        cost, elapsed, steps = _single_run(engine, seed=i, overrides=overrides)
        singles[engine] = {
            "cost": cost,
            "steps": steps,
            "steps_per_sec": round(steps / elapsed, 1),
        }
        total_budget = max(total_budget, steps)

    runs = []
    winner_blobs = set()
    for n in workers:
        runner = PortfolioRunner(
            CIRCUIT,
            engines,
            starts=starts,
            workers=n,
            budget=total_budget,
            overrides=overrides,
        )
        result = runner.run()
        runs.append(
            {
                "workers": n,
                "starts": starts,
                "budget": total_budget,
                "steps": result.total_steps,
                "elapsed_s": round(result.elapsed_s, 3),
                "aggregate_steps_per_sec": round(
                    result.total_steps / max(result.elapsed_s, 1e-9), 1
                ),
                "ref_cost": result.cost,
            }
        )
        winner_blobs.add(pickle.dumps(result.placement))

    # the winner must not depend on worker count (determinism acceptance)
    deterministic = len(winner_blobs) == 1

    quality = {}
    if check_quality:
        # per-engine: portfolio of `starts` compressed walks of ONE
        # engine under the single run's budget vs that single run
        for i, engine in enumerate(engines):
            result = PortfolioRunner(
                CIRCUIT,
                (engine,),
                starts=starts,
                workers=0,
                base_seed=i,
                budget=singles[engine]["steps"],
            ).run()
            best = result.best_by_engine()[engine].best_cost
            quality[engine] = {
                "single_cost": singles[engine]["cost"],
                "portfolio_cost": best,
                "improved": best <= singles[engine]["cost"],
            }

    base = runs[0]["aggregate_steps_per_sec"]
    return {
        "circuit": CIRCUIT,
        "modules": resolve_workload(CIRCUIT).n_modules,
        "cpu_count": multiprocessing.cpu_count(),
        "singles": singles,
        "runs": runs,
        "deterministic_winner": deterministic,
        "scaling": {
            str(r["workers"]): round(r["aggregate_steps_per_sec"] / base, 2)
            for r in runs
        },
        "quality": quality,
    }


def table(results: dict) -> str:
    lines = [
        f"portfolio scaling on {results['circuit']} "
        f"({results['cpu_count']} CPU(s) available)",
        f"{'workers':>8} {'steps':>8} {'elapsed':>9} {'agg steps/s':>12} {'scaling':>8}",
    ]
    for run in results["runs"]:
        lines.append(
            f"{run['workers']:>8} {run['steps']:>8,} {run['elapsed_s']:>8.2f}s "
            f"{run['aggregate_steps_per_sec']:>12,.0f} "
            f"{results['scaling'][str(run['workers'])]:>7.2f}x"
        )
    lines.append(f"deterministic winner across worker counts: {results['deterministic_winner']}")
    if results["quality"]:
        lines.append(
            f"{'engine':<10} {'single cost':>12} {'portfolio cost':>15} {'improved':>9}"
        )
        for engine, row in results["quality"].items():
            lines.append(
                f"{engine:<10} {row['single_cost']:>12.6f} "
                f"{row['portfolio_cost']:>15.6f} {str(row['improved']):>9}"
            )
    return "\n".join(lines)


def run(fast: bool = False, write: bool = False) -> dict:
    """Measure; optionally append a ``mode: parallel`` trajectory entry."""
    if fast:
        # bounded smoke configuration: short schedules, 2 workers max —
        # exercises serial + spawn paths and determinism in seconds
        overrides = (("alpha", 0.8), ("t_final", 1e-2))
        results = measure(
            overrides, workers=(1, 2), starts=4, check_quality=False
        )
    else:
        results = measure()

    recorded = record_trajectory_entry(
        "parallel",
        {
            "cpu_count": results["cpu_count"],
            "runs": results["runs"],
            "scaling": results["scaling"],
            "quality": {
                engine: row["improved"] for engine, row in results["quality"].items()
            },
        },
        write=write,
    )

    results["entry"] = recorded["entry"]
    results["appended"] = recorded["appended"]
    results["table"] = table(results)
    return results


def test_parallel_scaling_report(emit, benchmark):
    """Smoke tier: serial == spawn results, budget respected, progress sane."""
    results = benchmark.pedantic(lambda: run(fast=True), rounds=1, iterations=1)
    emit("parallel_scaling", results["table"])
    assert results["deterministic_winner"], "winner varied with worker count"
    for run_row in results["runs"]:
        assert run_row["steps"] <= run_row["budget"]
        assert run_row["aggregate_steps_per_sec"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short schedules and 2 workers max (seconds, for CI)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report only; do not append to BENCH_perf_kernel.json",
    )
    args = parser.parse_args(argv)
    outcome = run(fast=args.quick, write=not args.no_write)
    print(outcome["table"])
    if outcome["appended"]:
        print(f"\nappended trajectory entry: {JSON_PATH}")
    if not args.quick:
        at4 = outcome["scaling"].get("4")
        cpus = outcome["cpu_count"]
        status = "MET" if at4 and at4 >= SCALING_TARGET else (
            f"MISSED (only {cpus} CPU(s) available)" if cpus < 4 else "MISSED"
        )
        print(f"scaling target >={SCALING_TARGET}x at 4 workers: {status} ({at4}x)")
        bad = [e for e, row in outcome["quality"].items() if not row["improved"]]
        print(
            "portfolio quality vs single run: "
            + ("all engines improved or matched" if not bad else f"worse on: {', '.join(bad)}")
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
