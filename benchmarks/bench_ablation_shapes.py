"""Ablation — the design choices inside the shape-function flow.

Three knobs called out in DESIGN.md:

* enhanced vs. regular additions (the Table-I comparison itself);
* staircase truncation (``max_shapes``): quality/runtime trade-off;
* rotations in leaf enumeration.
"""

from __future__ import annotations

from repro.circuit import table1_circuit
from repro.shapes import DeterministicConfig, DeterministicPlacer


def run(circuit, **kwargs):
    result = DeterministicPlacer(circuit, DeterministicConfig(**kwargs)).run()
    assert result.placement.is_overlap_free()
    return result


def test_ablation_truncation(emit, benchmark):
    circuit = table1_circuit("folded_cascode")

    def sweep():
        return {
            cap: run(circuit, enhanced=True, max_shapes=cap)
            for cap in (2, 8, 32, None)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'max_shapes':>12} {'area usage':>12} {'runtime':>9}"]
    for cap, r in results.items():
        lines.append(
            f"{str(cap):>12} {100 * r.area_usage:>11.2f}% {r.runtime_s:>8.2f}s"
        )
    # wider beams can only help (monotone in the cap)
    assert results[32].area_usage <= results[2].area_usage + 1e-9
    emit("ablation_truncation", "\n".join(lines))


def test_ablation_rotations(emit, benchmark):
    circuit = table1_circuit("comparator_v2")

    def sweep():
        return (
            run(circuit, enhanced=True, rotations=True),
            run(circuit, enhanced=True, rotations=False),
        )

    with_rot, without_rot = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'rotations':>12} {'area usage':>12} {'runtime':>9}",
        f"{'on':>12} {100 * with_rot.area_usage:>11.2f}% {with_rot.runtime_s:>8.2f}s",
        f"{'off':>12} {100 * without_rot.area_usage:>11.2f}% "
        f"{without_rot.runtime_s:>8.2f}s",
    ]
    assert with_rot.area_usage <= without_rot.area_usage + 1e-9
    emit("ablation_rotations", "\n".join(lines))
