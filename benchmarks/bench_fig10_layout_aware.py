"""Experiments F9/F10 — layout-aware sizing of the folded-cascode amp.

Runs both flows of Fig. 10 and regenerates the comparison the paper
reports: the electrical-only sizing yields a badly-proportioned layout
whose specs fail once parasitics are extracted (the paper's (a),
195.8 x 358.8 um), while the layout-aware flow yields a compact,
near-square layout meeting every spec with parasitics included (the
paper's (b), 189.6 x 193.05 um).  Also reports the share of runtime
spent in layout generation + extraction (the paper's 17% remark) and
benchmarks the per-iteration kernels.
"""

from __future__ import annotations

from repro.analysis import render_placement
from repro.sizing import (
    FoldedCascodeSizing,
    electrical_sizing,
    evaluate,
    extract,
    generate_layout,
    layout_aware_sizing,
)


def test_fig10_regeneration(emit, benchmark):
    def both_flows():
        return electrical_sizing(seed=1), layout_aware_sizing(seed=1)

    plain, aware = benchmark.pedantic(both_flows, rounds=1, iterations=1)

    # -- the Fig. 10 claims -------------------------------------------------
    assert plain.specs.violations(plain.nominal.as_dict()) == []
    assert plain.extracted_violations() != []
    assert aware.extracted_violations() == []
    assert aware.layout.area < plain.layout.area
    plain_skew = max(plain.layout.aspect_ratio, 1 / plain.layout.aspect_ratio)
    aware_skew = max(aware.layout.aspect_ratio, 1 / aware.layout.aspect_ratio)
    assert aware_skew < plain_skew

    lines = [
        "flow (a): electrical sizing, no geometric/parasitic considerations",
        f"  layout {plain.layout.width:7.1f} x {plain.layout.height:7.1f} um, "
        f"area {plain.layout.area:9.0f} um^2, aspect {plain.layout.aspect_ratio:5.2f}",
        f"  specs failed after extraction: {', '.join(plain.extracted_violations())}",
        "",
        "flow (b): layout-aware sizing (parasitics + geometry in the loop)",
        f"  layout {aware.layout.width:7.1f} x {aware.layout.height:7.1f} um, "
        f"area {aware.layout.area:9.0f} um^2, aspect {aware.layout.aspect_ratio:5.2f}",
        "  all specs met after extraction",
        f"  layout generation + extraction: "
        f"{100 * aware.extraction_fraction:.0f}% of sizing runtime "
        f"({aware.evaluations} sizing evaluations in {aware.runtime_s:.2f}s)",
        "",
        f"area ratio (a)/(b): {plain.layout.area / aware.layout.area:.2f} "
        "(paper: 70,246 / 36,602 = 1.92)",
        "",
        "post-extraction spec report of flow (b):",
        aware.specs.report(aware.extracted.as_dict()),
        "",
        "layout-aware template instance:",
        render_placement(aware.layout.placement(), width=56, height=16),
    ]
    emit("fig10_layout_aware", "\n".join(lines))


def test_bench_performance_evaluation(benchmark):
    """One 'simulation' (the numeric AC evaluation) — the loop's cost."""
    sizing = FoldedCascodeSizing().clamped()
    benchmark(lambda: evaluate(sizing))


def test_bench_template_and_extraction(benchmark):
    """Template instantiation + extraction — the in-loop layout cost."""
    sizing = FoldedCascodeSizing().clamped()

    def layout_step():
        layout = generate_layout(sizing)
        return extract(sizing, layout)

    benchmark(layout_step)
