"""Ablation — symmetric vs. independent routing of a differential pair.

Section II: symmetric placement *and routing* exist "to match the
layout-induced parasitics in the two halves of a group of devices".
We place a differential structure symmetrically, then route its two
signal nets (a) mirrored about the axis and (b) independently, and
compare the parasitic mismatch between the halves.
"""

from __future__ import annotations

from repro.geometry import Module, Net, PlacedModule, Placement, Rect
from repro.route import Router, route_symmetric_pair


def _pm(n, x, y, w, h):
    return PlacedModule(Module.hard(n, w, h), Rect.from_size(x, y, w, h))


def symmetric_testcase():
    """A mirrored placement: input pair, cascodes and loads, axis x = 15."""
    placement = Placement.of(
        [
            _pm("inL", 4, 0, 6, 5),
            _pm("inR", 20, 0, 6, 5),
            _pm("cascL", 2, 8, 5, 4),
            _pm("cascR", 23, 8, 5, 4),
            _pm("loadL", 4, 16, 6, 4),
            _pm("loadR", 20, 16, 6, 4),
            _pm("tail", 12, 0, 6, 4),  # self-symmetric, on the axis
        ]
    )
    return placement


def unconstrained_testcase():
    """The same modules placed by an area-only packer's typical outcome:
    compact but with no symmetry whatsoever."""
    placement = Placement.of(
        [
            _pm("inL", 0, 0, 6, 5),
            _pm("inR", 6, 0, 6, 5),
            _pm("cascL", 12, 0, 5, 4),
            _pm("cascR", 0, 5, 5, 4),
            _pm("loadL", 5, 5, 6, 4),
            _pm("loadR", 11, 5, 6, 4),
            _pm("tail", 17, 0, 6, 4),
        ]
    )
    return placement


def nets():
    return (
        Net("sigL", ("inL", "cascL", "loadL")),
        Net("sigR", ("inR", "cascR", "loadR")),
    )


def test_symmetric_routing_mismatch(emit, benchmark):
    def run_both():
        net_l, net_r = nets()
        # (a) symmetric placement + mirrored routing (the section-II flow)
        router_m = Router(symmetric_testcase(), (net_l, net_r), pitch=1.0)
        mirrored = route_symmetric_pair(router_m, net_l, net_r, axis_x=15.0)
        # (b) unconstrained placement + independent routing
        router_i = Router(unconstrained_testcase(), (net_l, net_r), pitch=1.0)
        independent = router_i.route_all(order="given")
        return mirrored, independent

    mirrored, independent = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert mirrored.mirrored, "mirrored realization must succeed here"
    assert mirrored.wirelength_mismatch == 0.0
    assert mirrored.capacitance_mismatch == 0.0

    ind_l = independent.routed["sigL"]
    ind_r = independent.routed["sigR"]
    ind_wl = abs(ind_l.wirelength - ind_r.wirelength)
    ind_cap = abs(ind_l.capacitance - ind_r.capacitance)
    ind_res = abs(ind_l.resistance - ind_r.resistance)

    lines = [
        "differential signal-pair parasitics:",
        "(a) symmetric placement + mirrored routing vs",
        "(b) unconstrained placement + independent routing",
        "",
        f"{'':26}{'WL mismatch':>12}{'C mismatch':>12}{'R mismatch':>12}",
        f"{'(a) symmetric (sec. II)':26}"
        f"{mirrored.wirelength_mismatch:>10.1f}um"
        f"{mirrored.capacitance_mismatch:>10.2f}fF"
        f"{mirrored.resistance_mismatch:>10.2f}oh",
        f"{'(b) unconstrained':26}{ind_wl:>10.1f}um{ind_cap:>10.2f}fF{ind_res:>10.2f}oh",
        "",
        f"(b) left net:  {ind_l.wirelength:.1f} um, {ind_l.vias} vias",
        f"(b) right net: {ind_r.wirelength:.1f} um, {ind_r.vias} vias",
        "",
        "symmetric placement and routing match the layout-induced",
        "parasitics of the two signal halves exactly — the section-II",
        "motivation (offset voltage, PSRR, thermal balance).",
    ]
    emit("symmetric_routing", "\n".join(lines))

    # the unconstrained flow has no reason to be matched
    assert ind_wl > 0.0
    assert mirrored.wirelength_mismatch == 0.0