"""Ablation — hierarchical vs. flat annealing (the section-III argument).

Places a mid-size synthesized circuit twice under the same annealing
budget: once with the HB*-tree forest (hierarchy bounds the search and
maintains constraints by construction) and once with a flat B*-tree over
all modules (no constraint maintenance — symmetry error reported).
"""

from __future__ import annotations

from repro.bstar import BStarPlacer, BStarPlacerConfig, HierarchicalPlacer
from repro.circuit import table1_circuit


def test_ablation_hierarchy_vs_flat(emit, benchmark):
    circuit = table1_circuit("folded_cascode")
    config = BStarPlacerConfig(seed=2, alpha=0.9, steps_per_epoch=40)

    def run_both():
        hier = HierarchicalPlacer(circuit, config).run()
        flat = BStarPlacer(circuit.modules(), circuit.nets, config).run()
        return hier, flat

    hier, flat = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert hier.placement.is_overlap_free()
    assert flat.placement.is_overlap_free()

    groups = circuit.constraints().symmetry
    hier_err = sum(g.symmetry_error(hier.placement) for g in groups)
    flat_err = sum(g.symmetry_error(flat.placement) for g in groups)
    assert hier_err <= 1e-6, "hierarchical placement maintains symmetry exactly"
    assert flat_err > 1.0, "flat annealing has no reason to be symmetric"

    lines = [
        f"{circuit.name}: hierarchical (HB*-tree forest) vs flat B*-tree,",
        f"same schedule ({hier.stats.steps} steps):",
        "",
        f"{'':16}{'area usage':>12}{'total symmetry error':>22}",
        f"{'hierarchical':16}{100 * hier.placement.area_usage():>11.1f}%"
        f"{hier_err:>22.2e}",
        f"{'flat':16}{100 * flat.placement.area_usage():>11.1f}%"
        f"{flat_err:>22.2e}",
        "",
        "the hierarchy maintains every symmetry island by construction;",
        "flat annealing optimizes area but leaves the constraints unmet.",
    ]
    emit("ablation_hierarchy", "\n".join(lines))
