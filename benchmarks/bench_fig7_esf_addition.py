"""Experiment F7 — Fig. 7: one enhanced shape addition.

Builds two L-shaped operands, adds them with regular and enhanced
additions, and reports the width improvement ``w_imp`` that the
enhanced (placement-aware) addition achieves over the bounding-rectangle
addition.  Benchmarks the per-addition cost of both (the source of the
ESF runtime premium).
"""

from __future__ import annotations

from repro.analysis import render_placement
from repro.geometry import Module, PlacedModule, Placement, Rect
from repro.shapes import Shape, ShapeFunction, add_shape_functions


def operands():
    left_pl = Placement.of(
        [
            PlacedModule(Module.hard("A", 2, 6, rotatable=False), Rect.from_size(0, 0, 2, 6)),
            PlacedModule(Module.hard("B", 3, 2, rotatable=False), Rect.from_size(2, 0, 3, 2)),
        ]
    )
    right_pl = Placement.of(
        [
            PlacedModule(Module.hard("C", 2, 3, rotatable=False), Rect.from_size(0, 3, 2, 3)),
            PlacedModule(Module.hard("D", 1, 3, rotatable=False), Rect.from_size(2, 0, 1, 3)),
        ]
    )
    return (
        ShapeFunction((Shape.of_placement(left_pl),)),
        ShapeFunction((Shape.of_placement(right_pl),)),
    )


def test_fig7_regeneration(emit, benchmark):
    left, right = operands()

    def both():
        rsf = add_shape_functions(left, right, enhanced=False, direction="h")
        esf = add_shape_functions(left, right, enhanced=True, direction="h")
        return rsf, esf

    rsf, esf = benchmark.pedantic(both, rounds=10, iterations=1)
    r, e = rsf.min_area_shape(), esf.min_area_shape()
    w_imp = r.width - e.width
    assert w_imp > 0, "enhanced addition must interleave the operands"
    assert e.placement().is_overlap_free()

    text = "\n".join(
        [
            f"regular shape addition:  (w, h) = ({r.width:.1f}, {r.height:.1f})",
            f"enhanced shape addition: (w, h) = ({e.width:.1f}, {e.height:.1f})",
            f"w_imp = {w_imp:.1f} ({100 * w_imp / r.width:.0f}% narrower)",
            "",
            "enhanced result (operands interleave as in Fig. 7):",
            render_placement(e.placement(), width=40, height=12),
        ]
    )
    emit("fig7_esf_addition", text)


def test_bench_regular_addition(benchmark):
    left, right = operands()
    benchmark(lambda: add_shape_functions(left, right, enhanced=False, direction="h"))


def test_bench_enhanced_addition(benchmark):
    left, right = operands()
    benchmark(lambda: add_shape_functions(left, right, enhanced=True, direction="h"))
