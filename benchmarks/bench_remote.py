"""Distributed dispatch overhead — what does the socket tier cost on loopback?

The remote executor (docs/parallel.md#distributed-execution) moves
every chunk through pickle + a TCP frame + a lease table instead of a
direct call, so its loopback cost must be measured before anyone pays
it across a real network.  Two timings on ``miller_opamp``, warm
caches, paired rounds:

* **serial** — ``PortfolioRunner.run()`` inline, the floor.
* **remote** — the same portfolio with the coordinator listening on a
  loopback ephemeral port and two in-process ``WorkerClient`` threads.
  The delta against *serial* is framing + scheduling + lease
  bookkeeping; on a 2-worker loopback it should be roughly offset by
  the 2-way parallelism, so the ratio is reported, not bounded.

A recovery check then drops one worker's connection mid-walk
(``disconnect`` fault) and asserts the re-dispatched run still lands
the exact serial leaderboard.

Results are **appended** to ``BENCH_perf_kernel.json`` as
``mode: "remote"`` entries (the regression guard in ``run_all.py``
only compares entries of equal mode).

Run standalone:   python benchmarks/bench_remote.py [--quick] [--no-write]
Run under pytest: pytest benchmarks/bench_remote.py -q
"""

from __future__ import annotations

import argparse
import statistics
import threading
import time

from bench_perf_kernel import JSON_PATH, record_trajectory_entry

from repro.parallel import Fault, FaultPlan, PortfolioRunner, WorkerClient

CIRCUIT = "miller_opamp"
ENGINES = ("bstar", "hbtree")
STARTS = 4
OVERRIDES = (("alpha", 0.8), ("t_final", 1e-2))
ROUNDS = 8
WORKERS = 2


def _serial_run(**kwargs) -> "PortfolioResult":
    return PortfolioRunner(
        CIRCUIT, ENGINES, starts=STARTS, overrides=OVERRIDES, **kwargs
    ).run()


def _remote_run(**kwargs) -> "PortfolioResult":
    """One coordinator + ``WORKERS`` loopback worker threads, joined
    before returning so rounds never overlap."""
    threads: list[threading.Thread] = []

    def on_listen(address) -> None:
        for i in range(WORKERS):
            thread = threading.Thread(
                target=WorkerClient(address, name=f"bench-w{i}").run,
                daemon=True,
            )
            thread.start()
            threads.append(thread)

    result = _serial_run(listen=("127.0.0.1", 0), on_listen=on_listen, **kwargs)
    for thread in threads:
        thread.join(timeout=30)
    return result


def _paired_timings(fns: dict, rounds: int) -> tuple[dict, dict]:
    """``({name: (steps, fastest elapsed)}, {name: ratio vs first})``:
    interleaved rounds with rotated order, median of per-round ratios —
    same jitter defense as bench_faults.py."""
    names = list(fns)
    best = {name: (0, float("inf")) for name in names}
    samples: dict = {name: [] for name in names}
    for round_index in range(rounds):
        order = names[round_index % len(names):] + names[:round_index % len(names)]
        for name in order:
            started = time.perf_counter()
            steps = fns[name]()
            elapsed = time.perf_counter() - started
            samples[name].append(elapsed)
            if elapsed < best[name][1]:
                best[name] = (steps, elapsed)
    baseline = samples[names[0]]
    ratios = {
        name: statistics.median(t / b for t, b in zip(samples[name], baseline))
        for name in names[1:]
    }
    return best, ratios


def _recovery_check() -> dict:
    """A dropped connection mid-walk must heal byte-identically."""

    def rows(result):
        return [
            (o.spec.walk_id, o.best_cost, o.ref_cost, o.status)
            for o in result.leaderboard
        ]

    base = _serial_run()
    faulted = _remote_run(
        fault_plan=FaultPlan([Fault(1, 1, "disconnect")]),
        lease_timeout=2.0,
    )
    assert not faulted.failures
    assert rows(faulted) == rows(base)
    return {"disconnect_healed": True, "rows_identical": True}


def run(fast: bool = False, write: bool = False) -> dict:
    """Measure; optionally append a ``mode: remote`` trajectory entry."""
    rounds = 1 if fast else ROUNDS
    _serial_run()  # warm the per-process circuit/placer caches

    timings, ratios = _paired_timings(
        {
            "serial": lambda: _serial_run().total_steps,
            "remote": lambda: _remote_run().total_steps,
        },
        rounds,
    )
    ser_steps, ser_s = timings["serial"]
    rem_steps, rem_s = timings["remote"]

    ser_sps = ser_steps / ser_s
    rem_sps = rem_steps / rem_s
    dispatch_pct = 100.0 * (ratios["remote"] - 1.0)

    results = {
        "circuit": CIRCUIT,
        "workers": WORKERS,
        "serial_steps_per_sec": round(ser_sps, 1),
        "remote_steps_per_sec": round(rem_sps, 1),
        "dispatch_overhead_pct": round(dispatch_pct, 2),
        "recovery": _recovery_check(),
    }

    recorded = record_trajectory_entry(
        "remote",
        {
            "circuit": CIRCUIT,
            "engines": list(ENGINES),
            "starts": STARTS,
            "workers": WORKERS,
            "steps": rem_steps,
            "runs": [
                {
                    "variant": "serial",
                    "steps": ser_steps,
                    "steps_per_sec": results["serial_steps_per_sec"],
                },
                {
                    "variant": "remote",
                    "steps": rem_steps,
                    "steps_per_sec": results["remote_steps_per_sec"],
                },
            ],
            "dispatch_overhead_pct": results["dispatch_overhead_pct"],
        },
        write=write,
    )

    results["entry"] = recorded["entry"]
    results["appended"] = recorded["appended"]
    results["table"] = table(results)
    return results


def table(results: dict) -> str:
    lines = [
        f"distributed dispatch overhead on {results['circuit']} "
        f"(loopback, {results['workers']} workers)",
        f"{'variant':<12} {'steps/s':>10} {'vs serial':>10}",
        f"{'serial':<12} {results['serial_steps_per_sec']:>10,.0f} {'—':>10}",
        f"{'remote':<12} {results['remote_steps_per_sec']:>10,.0f} "
        f"{results['dispatch_overhead_pct']:>+9.2f}%",
        "recovery: disconnect mid-walk healed, rows byte-identical",
    ]
    return "\n".join(lines)


def test_remote_dispatch_report(emit, benchmark):
    """Smoke tier: loopback dispatch must stay sane and recovery exact.
    The wall-clock bound is deliberately loose — chunk granularity on a
    sub-second portfolio hides the parallelism; the trajectory entry
    records the real ratio."""
    results = benchmark.pedantic(lambda: run(fast=True), rounds=1, iterations=1)
    emit("remote_dispatch", results["table"])
    assert results["recovery"]["rows_identical"]
    assert results["dispatch_overhead_pct"] < 400.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="single timed round (for CI)"
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report only; do not append to BENCH_perf_kernel.json",
    )
    args = parser.parse_args(argv)
    outcome = run(fast=args.quick, write=not args.no_write)
    print(outcome["table"])
    if outcome["appended"]:
        print(f"\nappended trajectory entry: {JSON_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
