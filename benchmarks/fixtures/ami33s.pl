UCLA pl 1.0

bk1 0 0
bk2 0 0
bk3 0 0
bk4 0 0
bk5 0 0
bk6 0 0
bk7 0 0
bk8 0 0
bk9 0 0
bk10 0 0
bk11 0 0
bk12 0 0
