UCLA pl 1.0

sb0 0 0
sb1 0 0
sb2 0 0
sb3 0 0
sb4 0 0
sb5 0 0
sb6 0 0
sb7 0 0
sb8 0 0
sb9 0 0
sb10 0 0
sb11 0 0
sb12 0 0
sb13 0 0
sb14 0 0
sb15 0 0
