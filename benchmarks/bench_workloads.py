"""Workload scaling — annealing steps/sec and per-term cost vs size.

The workload subsystem (``repro.workloads``) opens the placers to
arbitrary module counts; this benchmark measures what that costs.  For
each size in 100 / 500 / 1000 / 2000 / 5000 / 10000 modules (the two
largest full-tier only, with capped step budgets — they measure how
throughput scales, not converged quality) it:

* resolves a ``gen:`` family circuit through the registry (the same
  string a CLI user or portfolio worker would use);
* drives a fixed number of incremental B*-tree annealing steps through
  the walk API (begin/advance — the exact portfolio execution path)
  and reports steps/sec;
* scores the walk's best placement with the engine-agnostic reference
  model and records the **per-term cost breakdown** (area /
  wirelength / aspect / violations), so scenario quality is tracked
  next to raw speed;
* asserts determinism: a second same-seed walk lands on a bit-identical
  best cost (workload resolution is pure, so this also guards the
  generator's seed stability at scale);
* round-trips the 500-module circuit through Bookshelf export/import
  and checks the re-imported module set matches — the disk format
  keeps up with the sizes the generator produces.

Results are **appended** to the ``BENCH_perf_kernel.json`` trajectory
as ``mode: "workloads"`` entries (the regression guard in
``run_all.py`` only compares entries of equal mode).

Run standalone:   python benchmarks/bench_workloads.py [--quick]
Run under pytest: pytest benchmarks/bench_workloads.py -q
"""

from __future__ import annotations

import argparse
import random
import tempfile
import time
from pathlib import Path

from bench_perf_kernel import JSON_PATH, record_trajectory_entry

from repro.anneal import IncrementalAnnealer
from repro.cost import reference_model
from repro.parallel import WalkSpec, build_placer
from repro.workloads import read_bookshelf, resolve_workload, write_bookshelf

#: one generated family, swept over n (constraints + soft modules on,
#: so the measured path is the realistic one, not a hard-block special)
FAMILY = "gen:n={n},seed=11,sym=0.2,prox=0.1,soft=0.1"

SIZES = (100, 500, 1000, 2000, 5000, 10000)
QUICK_SIZES = (100, 500)

#: step caps for the scaling-tail sizes: at tens of steps per second a
#: full 2000-step walk would dominate the whole benchmark's wall clock
#: without changing the steps/sec signal these points exist for
STEP_CAPS = {5000: 800, 10000: 300}

#: measured engine: the flat B*-tree incremental path (the fastest
#: tier, where workload size is the only variable)
ENGINE = "bstar"

OVERRIDES = (("alpha", 0.8), ("t_final", 1e-2))


def _walk(circuit, steps: int, seed: int):
    """``steps`` incremental annealing steps via the portfolio walk API.

    Returns (elapsed seconds, best cost, best placement).
    """
    placer = build_placer(
        circuit, WalkSpec(0, circuit.name, ENGINE, seed, OVERRIDES)
    )
    rng = random.Random(seed)
    engine = placer.engine()
    engine.reset(placer.initial_state(rng))
    annealer = IncrementalAnnealer(engine, placer.schedule(), rng)
    checkpoint = annealer.begin()
    t0 = time.perf_counter()
    checkpoint = annealer.advance(checkpoint, steps, _engine_synced=True)
    elapsed = time.perf_counter() - t0
    return elapsed, checkpoint.best_cost, placer.finalize(checkpoint.best_state)


def measure(n: int, *, steps: int, repeats: int = 2) -> dict:
    """One size point: resolve, anneal, score, check determinism."""
    name = FAMILY.format(n=n)
    t0 = time.perf_counter()
    circuit = resolve_workload(name)
    resolve_s = time.perf_counter() - t0

    best_sps = 0.0
    best_cost = None
    placement = None
    for _ in range(repeats):
        elapsed, cost, placement = _walk(circuit, steps, seed=1)
        best_sps = max(best_sps, steps / elapsed)
        best_cost = cost
    _, twin_cost, _ = _walk(circuit, steps, seed=1)

    model = reference_model(circuit)
    breakdown = model.breakdown_placement(placement)
    return {
        "workload": name,
        "modules": n,
        "nets": len(circuit.nets),
        "constraints": len(circuit.constraints().all()),
        "resolve_sec": round(resolve_s, 3),
        "steps": steps,
        "steps_per_sec": round(best_sps, 1),
        "ref_cost": model.evaluate_placement(placement),
        "cost_terms": {k: round(v, 4) for k, v in breakdown.items()},
        "deterministic": best_cost == twin_cost,
    }


def check_bookshelf_round_trip(n: int = 500) -> dict:
    """Export the n-module circuit, re-import, compare module sets."""
    circuit = resolve_workload(FAMILY.format(n=n))
    with tempfile.TemporaryDirectory() as tmp:
        paths = write_bookshelf(circuit, tmp, "scale")
        reread = read_bookshelf(paths["blocks"]).circuit
    names_match = reread.modules().names() == circuit.modules().names()
    return {
        "modules": n,
        "exported_nets": len(reread.nets),
        "module_names_identical": names_match,
    }


def run(fast: bool = False, write: bool = False) -> dict:
    """Measure every size; optionally append a trajectory entry."""
    sizes = QUICK_SIZES if fast else SIZES
    steps = 400 if fast else 2000
    repeats = 1 if fast else 2

    recorded = record_trajectory_entry(
        "workloads",
        {
            "engine": ENGINE,
            "runs": [
                measure(n, steps=min(steps, STEP_CAPS.get(n, steps)), repeats=repeats)
                for n in sizes
            ],
            "bookshelf_round_trip": check_bookshelf_round_trip(
                QUICK_SIZES[-1] if fast else 500
            ),
        },
        write=write,
    )
    entry = recorded["entry"]

    lines = [
        f"{'modules':>8} {'nets':>6} {'constr':>7} {'resolve':>8} "
        f"{'steps/s':>10} {'ref cost':>10}  per-term"
    ]
    for row in entry["runs"]:
        terms = "  ".join(f"{k}={v:g}" for k, v in row["cost_terms"].items())
        lines.append(
            f"{row['modules']:>8} {row['nets']:>6} {row['constraints']:>7} "
            f"{row['resolve_sec']:>7.2f}s {row['steps_per_sec']:>10,.0f} "
            f"{row['ref_cost']:>10.4f}  {terms}"
        )
    rt = entry["bookshelf_round_trip"]
    lines.append(
        f"bookshelf round trip at {rt['modules']} modules: "
        f"module names identical = {rt['module_names_identical']}"
    )
    return {
        "benchmark": "workload_scaling",
        "mode": entry["mode"],
        "runs": entry["runs"],
        "round_trip": rt,
        "entry": entry,
        "appended": recorded["appended"],
        "table": "\n".join(lines),
    }


def test_workloads_report(emit, benchmark):
    """Smoke tier: every size resolves, anneals deterministically, and
    the disk format round-trips — without touching the trajectory."""
    results = benchmark.pedantic(lambda: run(fast=True), rounds=1, iterations=1)
    emit("workload_scaling", results["table"])
    assert results["round_trip"]["module_names_identical"]
    for row in results["runs"]:
        assert row["steps_per_sec"] > 0
        assert row["deterministic"], f"{row['workload']} was not seed-stable"
        assert set(row["cost_terms"]) >= {"area", "wirelength", "aspect"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="two sizes and short walks (seconds, for CI)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report only; do not append to BENCH_perf_kernel.json",
    )
    args = parser.parse_args(argv)
    outcome = run(fast=args.quick, write=not args.no_write)
    print(outcome["table"])
    if outcome["appended"]:
        print(f"\nappended trajectory entry: {JSON_PATH}")
    bad = [r["workload"] for r in outcome["runs"] if not r["deterministic"]]
    if bad:
        print(f"NON-DETERMINISTIC workloads: {', '.join(bad)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
