"""Vector tier — array-native annealing steps/sec vs the incremental engine.

PR-3's incremental engine made each step proportional to what a move
changed; the vector tier (:class:`repro.perf.VectorBStarEngine` driven
by :class:`repro.anneal.BatchedAnnealer`) makes the *evaluation* of a
step array-native: flat numpy coordinate tables, CSR net->pin indices,
windowed multi-scale moves and batched multi-candidate proposals.  This
benchmark measures what that buys, and proves it changes nothing else:

* drives the vector engine and the incremental engine through the same
  walk API (begin/advance — the portfolio execution path) and reports
  steps/sec for both plus the ratio;
* replays the *identical* vector-tier walk (same seed, same batched
  driver) with the engine's **scalar oracle** evaluator — plain-float
  per-candidate evaluation through the unified
  :class:`~repro.cost.CostModel` — and asserts the best costs are
  byte-identical: the numpy path is an equal-answers fast path, not a
  different algorithm;
* the full tier measures 1,000 modules end to end (the ``>= 5x``
  acceptance point) and a step-capped 10,000-module run, past the
  2,000-module wall where the scalar tiers stop being usable.

The two engines draw different move families (windowed vs global), so
vector-vs-incremental best costs are **not** compared — quality is
tracked separately by the ``bstar-vector`` cell in the quality matrix
(see ``docs/perf.md`` for the measured tradeoff).

Results are **appended** to ``BENCH_perf_kernel.json`` as
``mode: "vector"`` entries; ``check_regression`` gates
``vector_steps_per_sec`` / ``incremental_steps_per_sec`` against the
most recent comparable entry exactly like the other tracked modes.

Run standalone:   python benchmarks/bench_vector.py [--quick]
Run under pytest: pytest benchmarks/bench_vector.py -q
"""

from __future__ import annotations

import argparse
import random
import time

from bench_perf_kernel import JSON_PATH, problem, record_trajectory_entry

from repro.anneal import BatchedAnnealer, GeometricSchedule, IncrementalAnnealer
from repro.bstar import BStarPlacerConfig
from repro.perf import IncrementalBStarEngine, VectorBStarEngine

#: acceptance bar: vector vs incremental steps/s at 1000 modules (full)
VECTOR_TARGET = 5.0

#: step caps per size — the big points measure throughput scaling; an
#: uncapped 10k-module incremental walk would run for many minutes
STEP_CAPS = {10000: 300}


def _schedule(config: BStarPlacerConfig) -> GeometricSchedule:
    return GeometricSchedule(
        t_initial=config.t_initial,
        t_final=config.t_final,
        alpha=config.alpha,
        steps_per_epoch=config.steps_per_epoch,
    )


def _drive(engine, annealer, max_steps: int | None):
    """Warmup + timed annealing via the checkpoint API.

    Returns (elapsed seconds of the annealing phase, steps, best cost).
    """
    checkpoint = annealer.begin()
    t0 = time.perf_counter()
    checkpoint = annealer.advance(checkpoint, max_steps, _engine_synced=True)
    elapsed = time.perf_counter() - t0
    return elapsed, checkpoint.step, checkpoint.best_cost


def _run_vector(modules, nets, config, max_steps, *, evaluator="vector"):
    rng = random.Random(config.seed)
    engine = VectorBStarEngine(modules, nets, (), config, evaluator=evaluator)
    engine.reset(engine.initial_state(rng))
    annealer = BatchedAnnealer(
        engine, _schedule(config), rng, batch_max=config.vector_batch
    )
    return _drive(engine, annealer, max_steps)


def _run_incremental(modules, nets, config, max_steps):
    rng = random.Random(config.seed)
    engine = IncrementalBStarEngine(modules, nets, (), config)
    engine.reset(engine.initial_state(rng))
    annealer = IncrementalAnnealer(engine, _schedule(config), rng)
    return _drive(engine, annealer, max_steps)


def measure(
    n: int,
    config: BStarPlacerConfig,
    repeats: int = 2,
    max_steps: int | None = None,
) -> dict:
    """Best-of-``repeats`` steps/sec, vector vs incremental, plus the
    scalar-oracle identity check on the vector walk."""
    modules, nets = problem(n)

    vector_sps = incremental_sps = 0.0
    vector_best = incremental_best = None
    steps = 0
    for _ in range(repeats):
        elapsed, steps, vector_best = _run_vector(modules, nets, config, max_steps)
        vector_sps = max(vector_sps, steps / elapsed)
        elapsed, inc_steps, incremental_best = _run_incremental(
            modules, nets, config, max_steps
        )
        incremental_sps = max(incremental_sps, inc_steps / elapsed)
    # one scalar-oracle replay of the vector walk: same seed, same
    # batched driver, plain-float evaluation — byte-identical or bust
    _, _, oracle_best = _run_vector(
        modules, nets, config, max_steps, evaluator="scalar"
    )
    assert vector_best == oracle_best, (
        f"vector evaluator diverged from the scalar oracle at {n} modules: "
        f"{vector_best!r} vs {oracle_best!r}"
    )
    return {
        "modules": n,
        "nets": len(nets),
        "steps": steps,
        "vector_steps_per_sec": round(vector_sps, 1),
        "incremental_steps_per_sec": round(incremental_sps, 1),
        "vector_speedup": round(vector_sps / incremental_sps, 2),
        "vector_best_cost": vector_best,
        "incremental_best_cost": incremental_best,
        "oracle_identical": True,
    }


def run(fast: bool = False, write: bool = False) -> dict:
    """Measure every size; optionally append a ``mode: "vector"`` entry."""
    if fast:
        # CI smoke: one mid-sized point, short schedule, capped steps —
        # seconds end to end, but the oracle identity assert still runs
        config = BStarPlacerConfig(seed=0, alpha=0.85, t_final=1e-3)
        points = [(200, 1, 800)]
    else:
        config = BStarPlacerConfig(seed=0)
        points = [
            (1000, 2, None),
            (10000, 1, STEP_CAPS[10000]),
        ]

    recorded = record_trajectory_entry(
        "vector",
        {
            "batch_max": config.vector_batch,
            "window_min": config.vector_window_min,
            "runs": [
                measure(n, config, repeats, max_steps)
                for n, repeats, max_steps in points
            ],
        },
        write=write,
        gate=True,
    )
    entry = recorded["entry"]
    regressions = recorded["regressions"]
    appended = recorded["appended"]

    lines = [
        f"{'modules':>8} {'steps':>7} {'vector/s':>10} {'incr/s':>10} {'vector x':>9}"
    ]
    for row in entry["runs"]:
        lines.append(
            f"{row['modules']:>8} {row['steps']:>7} "
            f"{row['vector_steps_per_sec']:>10,.0f} "
            f"{row['incremental_steps_per_sec']:>10,.0f} "
            f"{row['vector_speedup']:>8.2f}x"
        )
    return {
        "benchmark": "vector_tier_steps_per_sec",
        "mode": entry["mode"],
        "runs": entry["runs"],
        "entry": entry,
        "regressions": regressions,
        "appended": appended,
        "table": "\n".join(lines),
    }


def test_vector_report(emit, benchmark):
    """Smoke tier: the vector walk matches its scalar oracle byte for
    byte and beats the incremental engine even at the small smoke size."""
    results = benchmark.pedantic(lambda: run(fast=True), rounds=1, iterations=1)
    emit("vector_tier", results["table"])
    for row in results["runs"]:
        assert row["oracle_identical"]
        # the full-mode bar is VECTOR_TARGET at 1000 modules; the smoke
        # point is small and single-repeat, so the floor only guards
        # against the vector tier falling behind the scalar engine
        assert row["vector_speedup"] >= 1.2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small point with a short schedule (seconds, for CI)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report only; do not append to BENCH_perf_kernel.json",
    )
    args = parser.parse_args(argv)
    outcome = run(fast=args.quick, write=not args.no_write)
    print(outcome["table"])
    if outcome["appended"]:
        print(f"\nappended trajectory entry: {JSON_PATH}")
    for problem_msg in outcome["regressions"]:
        print(f"REGRESSION (entry not appended): {problem_msg}")
    if not args.quick:
        at_1000 = next(r for r in outcome["runs"] if r["modules"] == 1000)
        status = "MET" if at_1000["vector_speedup"] >= VECTOR_TARGET else "MISSED"
        print(
            f"vector target >={VECTOR_TARGET:.0f}x at 1000 modules: "
            f"{status} ({at_1000['vector_speedup']:.2f}x)"
        )
    return 1 if outcome["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
