"""Experiment F1 — Fig. 1: the symmetric-feasible sequence-pair example.

Regenerates the placement of the S-F code (EBAFCDG, EBCDFAG) with the
symmetry group gamma = {(C, D), (B, G), A, F}, and benchmarks the two
packers plus the symmetric packer on it.
"""

from __future__ import annotations

from repro.analysis import render_placement
from repro.circuit import fig1_modules, fig1_sequence_pair
from repro.seqpair import (
    SequencePair,
    is_symmetric_feasible,
    pack_lcs,
    pack_longest_path,
    pack_symmetric,
)


def test_fig1_regeneration(emit, benchmark):
    modules, group = fig1_modules()
    sp = SequencePair(*fig1_sequence_pair())
    assert is_symmetric_feasible(sp, [group])

    placement = benchmark.pedantic(
        lambda: pack_symmetric(sp, modules, [group]), rounds=5, iterations=1
    )
    assert placement.is_overlap_free()
    assert group.symmetry_error(placement) <= 1e-9

    text = "\n".join(
        [
            f"sequence-pair: alpha={''.join(sp.alpha)} beta={''.join(sp.beta)}",
            f"symmetry group gamma: pairs {group.pairs}, "
            f"self-symmetric {group.self_symmetric}",
            f"S-F (property (1)): True",
            f"axis x = {group.axis_of(placement):.2f}, "
            f"symmetry error = {group.symmetry_error(placement):.2e}",
            "",
            render_placement(placement, width=54, height=15),
        ]
    )
    emit("fig1_sf_example", text)


def test_bench_pack_lcs(benchmark):
    modules, _ = fig1_modules()
    sp = SequencePair(*fig1_sequence_pair())
    benchmark(lambda: pack_lcs(sp, modules))


def test_bench_pack_longest_path(benchmark):
    modules, _ = fig1_modules()
    sp = SequencePair(*fig1_sequence_pair())
    benchmark(lambda: pack_longest_path(sp, modules))


def test_bench_pack_symmetric(benchmark):
    modules, group = fig1_modules()
    sp = SequencePair(*fig1_sequence_pair())
    benchmark(lambda: pack_symmetric(sp, modules, [group]))
