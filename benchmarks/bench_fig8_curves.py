"""Experiment F8 — Fig. 8: ESF vs RSF staircases of `lnamixbias`.

Runs both deterministic flows on the 110-module circuit and plots the
two root shape functions in one diagram, as the paper does.  Shape to
hold: the ESF staircase lies on or below the RSF staircase.
"""

from __future__ import annotations

from repro.analysis import render_shape_functions, staircase_table
from repro.circuit import table1_circuit
from repro.shapes import DeterministicConfig, DeterministicPlacer


def test_fig8_regeneration(emit, benchmark):
    circuit = table1_circuit("lnamixbias")

    def both_flows():
        # Unbounded staircases: beam truncation would blur the exact
        # dominance of the ESF front over the RSF front.
        esf = DeterministicPlacer(
            circuit, DeterministicConfig(enhanced=True, max_shapes=None)
        ).run()
        rsf = DeterministicPlacer(
            circuit, DeterministicConfig(enhanced=False, max_shapes=None)
        ).run()
        return esf, rsf

    esf, rsf = benchmark.pedantic(both_flows, rounds=1, iterations=1)
    assert esf.area_usage <= rsf.area_usage + 1e-9

    # Pointwise dominance: every RSF staircase point has an ESF shape at
    # most as large in both dimensions (Fig. 8: the ESF curve lies on or
    # below the RSF curve).
    esf_points = esf.shape_function.staircase()
    rsf_points = rsf.shape_function.staircase()
    dominated = sum(
        1
        for rw, rh in rsf_points
        if any(ew <= rw + 1e-9 and eh <= rh + 1e-9 for ew, eh in esf_points)
    )
    dominance = dominated / len(rsf_points)
    assert dominance >= 0.9, f"ESF dominates only {100 * dominance:.0f}% of RSF points"

    text = "\n".join(
        [
            f"lnamixbias ({circuit.n_modules} modules)",
            f"ESF: area usage {100 * esf.area_usage:.2f}%, {esf.runtime_s:.2f}s, "
            f"{len(esf.shape_function)} staircase points",
            f"RSF: area usage {100 * rsf.area_usage:.2f}%, {rsf.runtime_s:.2f}s, "
            f"{len(rsf.shape_function)} staircase points",
            f"ESF dominates {100 * dominance:.0f}% of the RSF staircase points",
            "",
            render_shape_functions(
                {"ESF": esf.shape_function, "RSF": rsf.shape_function},
                width=64,
                height=18,
            ),
            "",
            "staircase samples (16-point views):",
            staircase_table(
                {
                    "ESF": esf.shape_function.truncated(16),
                    "RSF": rsf.shape_function.truncated(16),
                }
            ),
        ]
    )
    emit("fig8_curves", text)
