"""Ablation — slicing vs. non-slicing representations (the section-I claim).

"Today it is widely acknowledged that [slicing] is not a good choice for
high-performance analog design since the slicing representations limit
the set of reachable layout topologies, degrading the layout density
especially when cells are very different in size."

We measure exactly that: anneal the slicing placer (normalized Polish
expressions, Wong-Liu moves, Stockmeyer evaluation) and the non-slicing
B*-tree placer under the same schedule, on (a) homogeneous cells and
(b) analog-typical heterogeneous cells (one big capacitor among small
transistors).  Expected shape: comparable density on (a), a clear
non-slicing advantage on (b).
"""

from __future__ import annotations

import random

from repro.bstar import BStarPlacer, BStarPlacerConfig
from repro.geometry import Module, ModuleSet
from repro.slicing import SlicingPlacer, SlicingPlacerConfig


def homogeneous(n: int = 12, seed: int = 0) -> ModuleSet:
    rng = random.Random(seed)
    return ModuleSet.of(
        [
            Module.hard(f"m{i}", rng.uniform(4.0, 6.0), rng.uniform(4.0, 6.0), rotatable=False)
            for i in range(n)
        ]
    )


def heterogeneous(n: int = 12, seed: int = 0) -> ModuleSet:
    """Analog-typical: a few large capacitors among small transistors."""
    rng = random.Random(seed)
    modules = []
    for i in range(n):
        if i < 2:
            side = rng.uniform(18.0, 24.0)  # big caps
            modules.append(Module.hard(f"m{i}", side, side, rotatable=False))
        else:
            modules.append(
                Module.hard(
                    f"m{i}", rng.uniform(1.5, 5.0), rng.uniform(1.5, 5.0), rotatable=False
                )
            )
    return ModuleSet.of(modules)


def run_pair(mods: ModuleSet, seed: int):
    slicing = SlicingPlacer(
        mods,
        config=SlicingPlacerConfig(seed=seed, alpha=0.93, steps_per_epoch=60),
    ).run()
    bstar = BStarPlacer(
        mods,
        config=BStarPlacerConfig(
            seed=seed, alpha=0.93, steps_per_epoch=60, wirelength_weight=0.0, aspect_weight=0.0
        ),
    ).run()
    assert slicing.placement.is_overlap_free()
    assert bstar.placement.is_overlap_free()
    return slicing.placement.area_usage(), bstar.placement.area_usage()


def test_slicing_vs_nonslicing(emit, benchmark):
    def sweep():
        seeds = (1, 2, 3)
        homo = [run_pair(homogeneous(seed=s), seed=s) for s in seeds]
        hetero = [run_pair(heterogeneous(seed=s), seed=s) for s in seeds]
        return homo, hetero

    homo, hetero = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def avg(values):
        return sum(values) / len(values)

    homo_slicing = avg([s for s, _ in homo])
    homo_bstar = avg([b for _, b in homo])
    het_slicing = avg([s for s, _ in hetero])
    het_bstar = avg([b for _, b in hetero])

    gap_homo = homo_slicing - homo_bstar
    gap_hetero = het_slicing - het_bstar

    lines = [
        "slicing (Polish expressions) vs non-slicing (B*-tree), same schedule,",
        "average area usage over 3 seeds:",
        "",
        f"{'cells':>14} {'slicing':>10} {'B*-tree':>10} {'gap':>8}",
        f"{'homogeneous':>14} {100 * homo_slicing:>9.1f}% {100 * homo_bstar:>9.1f}% "
        f"{100 * gap_homo:>7.1f}pp",
        f"{'heterogeneous':>14} {100 * het_slicing:>9.1f}% {100 * het_bstar:>9.1f}% "
        f"{100 * gap_hetero:>7.1f}pp",
        "",
        "the section-I claim: the slicing penalty grows when cells differ",
        "strongly in size (big capacitors among small transistors).",
    ]
    emit("slicing_vs_nonslicing", "\n".join(lines))

    # shape assertions: non-slicing at least as dense on heterogeneous
    # cells, and the heterogeneous gap exceeds the homogeneous gap.
    assert het_bstar <= het_slicing + 1e-9
    assert gap_hetero > gap_homo - 0.02
