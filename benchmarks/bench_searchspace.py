"""Experiments S2 and S4 — the paper's search-space numbers.

S2 (section II): for n = 7 cells with the Fig.-1 symmetry group there
are 35,280 symmetric-feasible sequence-pairs of (7!)^2 = 25,401,600 —
a 99.86% reduction.  Verified three ways: closed form, brute force
(small n), and alpha-enumeration (exact n = 7).

S4 (section IV): the number of B*-tree placements of 8 modules is
57,657,600 = 8! * Catalan(8); small-n counts verified by exhaustive
tree enumeration.
"""

from __future__ import annotations

from repro.analysis import (
    bstar_space_table,
    hierarchical_enumeration_size,
    reduction_factor,
    sequence_pair_report,
)
from repro.bstar import count_bstar_trees, enumerate_bstar_trees
from repro.circuit import SymmetryGroup, fig1_modules
from repro.seqpair import count_sf_bruteforce, count_sf_semi_enumerated


def test_s2_sequence_pair_reduction(emit, benchmark):
    _, group = fig1_modules()
    report = sequence_pair_report(7, [group])
    assert report.total_codes == 25_401_600
    assert report.sf_codes == 35_280

    # exact verification by enumerating all 5040 alphas
    count = benchmark.pedantic(
        lambda: count_sf_semi_enumerated(list("ABCDEFG"), [group]),
        rounds=1,
        iterations=1,
    )
    assert count == 35_280

    # brute force on a shrunken instance (1 pair + 1 self-symmetric, n = 4)
    small_group = SymmetryGroup("g", pairs=(("C", "D"),), self_symmetric=("A",))
    small = count_sf_bruteforce(list("ACDX"), [small_group])
    small_report = sequence_pair_report(4, [small_group])
    assert small == small_report.sf_codes

    text = "\n".join(
        [
            "section II lemma (S-F sequence-pair counts):",
            "  " + report.describe(),
            f"  exact alpha-enumeration agrees: {count:,}",
            f"  brute force n=4 instance: {small} == closed form "
            f"{small_report.sf_codes}",
        ]
    )
    emit("searchspace_s2", text)


def test_s4_bstar_space(emit, benchmark):
    assert count_bstar_trees(8) == 57_657_600

    # exhaustive verification for n <= 4
    def verify_small():
        return [sum(1 for _ in enumerate_bstar_trees([f"m{i}" for i in range(n)]))
                for n in (1, 2, 3, 4)]

    counts = benchmark.pedantic(verify_small, rounds=1, iterations=1)
    assert counts == [count_bstar_trees(n) for n in (1, 2, 3, 4)]

    lines = ["section IV flat B*-tree space (n! * Catalan(n)):"]
    for n, c in bstar_space_table(10):
        marker = "  <- the paper's 8-module example" if n == 8 else ""
        lines.append(f"  n={n:>2}: {c:>15,}{marker}")
    lines.append("")
    lines.append("hierarchically bounded enumeration (basic sets of 3+3+3 modules):")
    lines.append(
        f"  sum-of-sets {hierarchical_enumeration_size([3, 3, 3]):,} placements vs "
        f"flat {count_bstar_trees(9):,} — {reduction_factor([3, 3, 3]):.1e}x smaller"
    )
    emit("searchspace_s4", "\n".join(lines))
