"""Ablation — S-F move set vs. unconstrained annealing with a penalty.

Section II argues for exploring only symmetric-feasible codes with a
property-(1)-preserving move set.  The alternative is annealing over
*all* sequence-pairs and pushing symmetry into the cost as a penalty.
This bench runs both on the Fig.-1 problem under the same move budget
and reports final area and residual symmetry error: the S-F move set
achieves exact symmetry by construction, the penalty formulation
typically does not (or pays area for it).
"""

from __future__ import annotations

import random

from repro.anneal import Annealer, FunctionMoveSet, GeometricSchedule
from repro.circuit import fig1_modules
from repro.seqpair import (
    PlacerConfig,
    SequencePair,
    SequencePairPlacer,
    pack_lcs,
)


def penalty_anneal(modules, group, seed: int, penalty_weight: float = 2.0):
    """Unconstrained SA over raw sequence-pairs with a symmetry penalty."""
    names = list(modules.names())
    area_scale = modules.total_module_area()

    def cost(sp: SequencePair) -> float:
        placement = pack_lcs(sp, modules)
        err = group.symmetry_error(placement)
        return placement.area / area_scale + penalty_weight * err / area_scale**0.5

    def move(sp: SequencePair, rng: random.Random):
        a, b = rng.sample(names, 2)
        roll = rng.random()
        if roll < 0.4:
            return sp.with_alpha_swap(sp.alpha_index(a), sp.alpha_index(b))
        if roll < 0.8:
            return sp.with_beta_swap(sp.beta_index(a), sp.beta_index(b))
        return sp.with_both_swap(a, b)

    rng = random.Random(seed)
    schedule = GeometricSchedule(alpha=0.9, steps_per_epoch=40, t_final=1e-4)
    annealer = Annealer(cost, FunctionMoveSet(move), schedule, rng)
    outcome = annealer.run(SequencePair.random(names, rng))
    return pack_lcs(outcome.best_state, modules)


def test_ablation_sf_moves(emit, benchmark):
    modules, group = fig1_modules()

    def run_both():
        sf = SequencePairPlacer(
            modules,
            (group,),
            config=PlacerConfig(seed=4, alpha=0.9, steps_per_epoch=40),
        ).run()
        pen = penalty_anneal(modules, group, seed=4)
        return sf, pen

    sf_result, pen_placement = benchmark.pedantic(run_both, rounds=1, iterations=1)

    sf_err = group.symmetry_error(sf_result.placement)
    pen_err = group.symmetry_error(pen_placement)
    assert sf_err <= 1e-6, "S-F move set must give exact symmetry"

    lines = [
        "S-F move set (section II) vs. symmetry-penalty annealing,",
        "same cooling schedule, Fig. 1 problem:",
        "",
        f"{'':24}{'area usage':>12}{'symmetry error':>16}",
        f"{'S-F move set':24}{100 * sf_result.placement.area_usage():>11.1f}%"
        f"{sf_err:>16.2e}",
        f"{'penalty annealing':24}{100 * pen_placement.area_usage():>11.1f}%"
        f"{pen_err:>16.2e}",
        "",
        "the S-F formulation guarantees zero symmetry error by construction;",
        "the penalty run must trade area against residual asymmetry.",
    ]
    emit("ablation_sf_moves", "\n".join(lines))
