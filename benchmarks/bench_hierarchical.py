"""Experiments F2-F6 — hierarchical placement with layout constraints.

Regenerates the Fig.-2/4/5 scenario: the hierarchical design placed by
the HB*-tree placer with its symmetry island, two common-centroid arrays
and a proximity cluster — all constraints verified on the result — and
the Fig.-6 Miller op amp hierarchy placed the same way.
"""

from __future__ import annotations

import random

from repro.analysis import render_placement
from repro.bstar import BStarPlacerConfig, HBStarTreePlacement, HierarchicalPlacer
from repro.circuit import fig2_design, miller_opamp


def _hierarchy_text(node, indent="  "):
    lines = [f"{indent}{node.name} [{node.constraint_kind.value}] "
             f"modules: {', '.join(m.name for m in node.modules) or '-'}"]
    for child in node.children:
        lines.extend(_hierarchy_text(child, indent + "  "))
    return lines


def test_fig2_to_5_regeneration(emit, benchmark):
    circuit = fig2_design()
    config = BStarPlacerConfig(seed=5, alpha=0.92, steps_per_epoch=50)

    result = benchmark.pedantic(
        lambda: HierarchicalPlacer(circuit, config).run(), rounds=1, iterations=1
    )
    placement = result.placement
    constraints = circuit.constraints()
    assert placement.is_overlap_free()
    assert constraints.violations(placement) == []

    lines = ["Fig. 2 layout design hierarchy:"]
    lines.extend(_hierarchy_text(circuit.hierarchy))
    lines.append("")
    lines.append("HB*-tree placement (Figs. 4/5 scenario):")
    lines.append(render_placement(placement, width=66, height=20))
    lines.append("")
    for g in constraints.symmetry:
        lines.append(f"symmetry {g.name}: error {g.symmetry_error(placement):.2e}")
    for g in constraints.common_centroid:
        lines.append(f"common-centroid {g.name}: error {g.centroid_error(placement):.2e}")
    from repro.geometry import well_report

    for g in constraints.proximity:
        connected = g.is_satisfied(placement)
        rects = [placement[m].rect for m in g.members()]
        wells = well_report(rects, well_margin=1.0, ring_width=0.8)
        lines.append(
            f"proximity {g.name}: {'connected' if connected else 'SPLIT'}; "
            f"shared well {wells.shared_well_area:.0f} vs separate "
            f"{wells.separate_well_area:.0f} um^2 "
            f"(saving {wells.sharing_saving:.0f}), "
            f"guard ring {wells.guard_ring_area:.0f} um^2"
        )
        assert connected
        assert wells.sharing_saving > 0.0
    lines.append(f"area usage {100 * placement.area_usage():.1f}%")
    emit("fig2to5_hierarchical", "\n".join(lines))


def test_fig6_miller_hierarchy(emit, benchmark):
    circuit = miller_opamp()
    config = BStarPlacerConfig(seed=3, alpha=0.92, steps_per_epoch=50)
    result = benchmark.pedantic(
        lambda: HierarchicalPlacer(circuit, config).run(), rounds=1, iterations=1
    )
    assert result.placement.is_overlap_free()
    assert circuit.constraints().violations(result.placement) == []

    lines = ["Fig. 6 Miller op amp hierarchy tree:"]
    lines.extend(_hierarchy_text(circuit.hierarchy))
    lines.append("")
    lines.append(render_placement(result.placement, width=60, height=16))
    lines.append(f"area usage {100 * result.placement.area_usage():.1f}%")
    emit("fig6_miller", "\n".join(lines))


def test_bench_hb_pack(benchmark):
    """Packing one HB*-tree forest state (the inner loop of the placer)."""
    circuit = fig2_design()
    hb = HBStarTreePlacement(circuit.hierarchy, circuit.modules())
    state = hb.initial_state(random.Random(0))
    benchmark(lambda: hb.pack(state))


def test_bench_hb_perturb_and_pack(benchmark):
    """One full annealing step: perturb the forest + repack."""
    circuit = fig2_design()
    hb = HBStarTreePlacement(circuit.hierarchy, circuit.modules())
    rng = random.Random(0)
    state = hb.initial_state(rng)

    def step():
        nonlocal state
        state = hb.propose(state, rng)
        return hb.pack(state)

    benchmark(step)
