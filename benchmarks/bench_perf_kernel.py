"""Perf kernel — annealing steps/sec, object path vs flat kernel.

Measures the end-to-end simulated-annealing step rate of the flat
B*-tree placer through both evaluation tiers:

* **object path** — every step packs a full :class:`Placement` of
  ``PlacedModule`` records and evaluates ``_CostModel`` on it (how the
  placer worked before ``repro.perf``);
* **kernel path** — every step runs :class:`repro.perf.BStarKernel`:
  flat coordinates, precomputed footprints, reusable skyline.

Both paths drive the *same* annealer, moves, schedule and seed, and
must land on a bit-identical best cost (asserted) — the kernel buys
speed, not different answers.  Results are written to
``BENCH_perf_kernel.json`` at the repo root so the steps/sec trajectory
is tracked from PR to PR.

Run standalone:   python benchmarks/bench_perf_kernel.py
Run under pytest: pytest benchmarks/bench_perf_kernel.py -q
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path

from repro.anneal import Annealer, GeometricSchedule
from repro.bstar import BStarPlacer, BStarPlacerConfig
from repro.bstar.packing import pack
from repro.bstar.perturb import BStarMoveSet
from repro.bstar.placer import _CostModel
from repro.geometry import Module, ModuleSet, Net

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_kernel.json"

#: the acceptance bar for this benchmark (flat placer, 50 modules)
TARGET_SPEEDUP = 5.0


def problem(n: int, seed: int = 0) -> tuple[ModuleSet, tuple[Net, ...]]:
    """``n`` hard modules with ``~n`` random two-pin nets."""
    rng = random.Random(seed)
    modules = ModuleSet.of(
        [Module.hard(f"m{i}", rng.uniform(1, 10), rng.uniform(1, 10)) for i in range(n)]
    )
    names = modules.names()
    nets = []
    for i in range(n):
        a, b = names[rng.randrange(n)], names[rng.randrange(n)]
        if a != b:
            nets.append(Net(f"n{i}", (a, b)))
    return modules, tuple(nets)


def measure(n: int, config: BStarPlacerConfig, repeats: int = 3) -> dict:
    """Best-of-``repeats`` steps/sec for both evaluation tiers."""
    modules, nets = problem(n)
    placer = BStarPlacer(modules, nets, config)
    reference = _CostModel(modules, nets, (), config)

    def object_cost(state):
        return reference(pack(state.tree, modules, state.orientations, state.variants))

    moves = BStarMoveSet(modules)
    schedule = GeometricSchedule(
        t_initial=config.t_initial,
        t_final=config.t_final,
        alpha=config.alpha,
        steps_per_epoch=config.steps_per_epoch,
    )

    def run_once(cost_fn) -> tuple[float, float]:
        rng = random.Random(config.seed)
        annealer = Annealer(cost_fn, moves, schedule, rng)
        initial = moves.initial_state(rng)
        t0 = time.perf_counter()
        outcome = annealer.run(initial)
        elapsed = time.perf_counter() - t0
        return outcome.stats.steps / elapsed, outcome.best_cost

    old_sps, new_sps = 0.0, 0.0
    old_cost = new_cost = None
    for _ in range(repeats):
        sps, old_cost = run_once(object_cost)
        old_sps = max(old_sps, sps)
        sps, new_cost = run_once(placer.cost)
        new_sps = max(new_sps, sps)
    assert old_cost == new_cost, (
        f"kernel diverged from object path: {old_cost} vs {new_cost}"
    )
    return {
        "modules": n,
        "nets": len(nets),
        "object_steps_per_sec": round(old_sps, 1),
        "kernel_steps_per_sec": round(new_sps, 1),
        "speedup": round(new_sps / old_sps, 2),
        "best_cost_identical": True,
    }


def run(fast: bool = False) -> dict:
    """Measure all sizes; write ``BENCH_perf_kernel.json``; return results."""
    if fast:
        # bounded steps for the smoke runner: a shorter schedule, fewer
        # repeats — still exercises both tiers and the identity assert
        config = BStarPlacerConfig(seed=0, alpha=0.85, t_final=1e-3)
        sizes, repeats = (50,), 1
    else:
        config = BStarPlacerConfig(seed=0)
        sizes, repeats = (50, 100), 3

    results = {
        "benchmark": "perf_kernel_steps_per_sec",
        "mode": "fast" if fast else "full",
        "python": platform.python_version(),
        "runs": [measure(n, config, repeats) for n in sizes],
    }
    if not fast:
        # Only full runs update the tracked artifact.
        JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    header = f"{'modules':>8} {'object steps/s':>15} {'kernel steps/s':>15} {'speedup':>8}"
    lines = [header]
    for row in results["runs"]:
        lines.append(
            f"{row['modules']:>8} {row['object_steps_per_sec']:>15,.0f} "
            f"{row['kernel_steps_per_sec']:>15,.0f} {row['speedup']:>7.2f}x"
        )
    results["table"] = "\n".join(lines)
    return results


def test_perf_kernel_report(emit, benchmark):
    """Smoke-tier run: both paths agree and the kernel is clearly faster."""
    results = benchmark.pedantic(lambda: run(fast=True), rounds=1, iterations=1)
    emit("perf_kernel", results["table"])
    for row in results["runs"]:
        assert row["best_cost_identical"]
        # the full-run bar is TARGET_SPEEDUP; leave headroom for the
        # noisier bounded-step smoke configuration
        assert row["speedup"] >= 2.0


if __name__ == "__main__":
    outcome = run(fast=False)
    print(outcome["table"])
    print(f"\nwritten: {JSON_PATH}")
    at_50 = next(r for r in outcome["runs"] if r["modules"] == 50)
    status = "MET" if at_50["speedup"] >= TARGET_SPEEDUP else "MISSED"
    print(f"target >={TARGET_SPEEDUP:.0f}x at 50 modules: {status} ({at_50['speedup']:.2f}x)")
