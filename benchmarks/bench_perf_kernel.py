"""Perf kernel — annealing steps/sec across all three evaluation tiers.

Measures the end-to-end simulated-annealing step rate of the flat
B*-tree placer through the evaluation tiers, slowest to fastest:

* **object path** — every step packs a full :class:`Placement` of
  ``PlacedModule`` records and evaluates the legacy object-tier cost
  formula on it (how the placer worked before ``repro.perf``; the
  formula is replicated inline here so the baseline measurement
  survives the class's deletion);
* **kernel path** — every step runs :class:`repro.perf.BStarKernel`
  (PR 1): flat coordinates, precomputed footprints, reusable skyline —
  but still a *full* repack and a full net rescan per step;
* **incremental path** — every step runs
  :class:`repro.perf.IncrementalBStarEngine` (PR 2): in-place moves,
  dirty-suffix repack from checkpointed skylines, delta HPWL, rollback
  on rejection.

The object and kernel paths drive the same annealer, moves, schedule
and seed and must land on a bit-identical best cost.  The incremental
path draws its own (identically distributed) walk; its best cost is
asserted bit-identical against :class:`FullRepackBStarEngine`, which
replays the *same* walk with full per-step repacks — speed changes,
answers don't.

A **cost-eval micro-tier** sits alongside the annealing tiers: it times
the unified :class:`repro.cost.CostModel` against a hand-inlined
replica of the legacy monolithic evaluation over identical coordinate
tables, recording the declarative layer's dispatch overhead (the PR-4
budget: the unified model must stay within a few percent of the
inlined path, and end-to-end steps/s within 5% of the PR-3 trajectory).

Results are **appended** to the ``trajectory`` list in
``BENCH_perf_kernel.json`` at the repo root, so steps/sec is tracked
from PR to PR; ``check_regression`` diffs a fresh entry against the
most recent comparable one (same mode, same module count) and is wired
into ``benchmarks/run_all.py`` as a regression gate.

Run standalone:   python benchmarks/bench_perf_kernel.py [--quick]
Run under pytest: pytest benchmarks/bench_perf_kernel.py -q
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.anneal import Annealer, GeometricSchedule, IncrementalAnnealer
from repro.bstar import BStarPlacerConfig
from repro.bstar.packing import pack
from repro.bstar.perturb import BStarMoveSet
from repro.bstar.tree import BStarTree
from repro.cost import hpwl_of, resolve_nets
from repro.geometry import Module, ModuleSet, Net, total_hpwl
from repro.perf import (
    BStarKernel,
    FullRepackBStarEngine,
    IncrementalBStarEngine,
    bounding_of,
)

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_kernel.json"

#: PR-1 acceptance bar: kernel vs object path at 50 modules
TARGET_SPEEDUP = 5.0
#: PR-2 target: incremental vs full-repack kernel at 100 modules
INCREMENTAL_TARGET = 3.0
#: regression gate used by run_all.py (fractional steps/s drop)
REGRESSION_THRESHOLD = 0.20


def problem(n: int, seed: int = 0) -> tuple[ModuleSet, tuple[Net, ...]]:
    """``n`` hard modules with ``~n`` random two-pin nets."""
    rng = random.Random(seed)
    modules = ModuleSet.of(
        [Module.hard(f"m{i}", rng.uniform(1, 10), rng.uniform(1, 10)) for i in range(n)]
    )
    names = modules.names()
    nets = []
    for i in range(n):
        a, b = names[rng.randrange(n)], names[rng.randrange(n)]
        if a != b:
            nets.append(Net(f"n{i}", (a, b)))
    return modules, tuple(nets)


def _legacy_object_cost(modules, nets, config):
    """The pre-PR-4 object-tier cost formula (``_CostModel``), inlined
    so the baseline tier keeps measuring what it always measured."""
    area_scale = max(modules.total_module_area(), 1e-12)
    wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)

    def cost(placement) -> float:
        bb = placement.bounding_box()
        total = config.area_weight * bb.area / area_scale
        if nets and config.wirelength_weight:
            total += config.wirelength_weight * total_hpwl(nets, placement) / wl_scale
        if config.aspect_weight and bb.width > 0 and bb.height > 0:
            ratio = bb.height / bb.width
            deviation = max(ratio, 1.0 / ratio) / max(config.target_aspect, 1e-12)
            total += config.aspect_weight * max(0.0, deviation - 1.0)
        return total

    return cost


def _legacy_flat_eval(modules, nets, config):
    """Hand-inlined replica of the pre-PR-4 monolithic flat-coordinate
    evaluation (``FastCostModel.evaluate``): the yardstick the unified
    model's per-term dispatch overhead is measured against."""
    resolved = resolve_nets(nets, modules.names())
    has_nets = bool(nets)
    area_scale = max(modules.total_module_area(), 1e-12)
    wl_scale = max(area_scale**0.5 * max(len(nets), 1), 1e-12)

    def evaluate(coords) -> float:
        bx0, by0, bx1, by1 = bounding_of(coords.values())
        width = bx1 - bx0
        height = by1 - by0
        cost = config.area_weight * (width * height) / area_scale
        if has_nets and config.wirelength_weight:
            cost += config.wirelength_weight * hpwl_of(resolved, coords) / wl_scale
        if config.aspect_weight and width > 0 and height > 0:
            ratio = height / width
            deviation = max(ratio, 1.0 / ratio) / max(config.target_aspect, 1e-12)
            cost += config.aspect_weight * max(0.0, deviation - 1.0)
        return cost

    return evaluate


def measure_cost_eval(
    n: int, config: BStarPlacerConfig, *, evals: int = 4000, repeats: int = 3
) -> dict:
    """Cost-eval micro-tier: unified model vs inlined legacy evaluation.

    Times full evaluations of the same pre-packed coordinate tables
    through :class:`repro.cost.CostModel` and through the inlined
    legacy formula, asserting bit-identical results.  The overhead
    percentage is the declarative layer's dispatch cost.
    """
    modules, nets = problem(n)
    kernel = BStarKernel(modules, nets, (), config)
    model = kernel.model
    legacy = _legacy_flat_eval(modules, nets, config)
    rng = random.Random(config.seed)
    tables = [
        dict(kernel.pack(BStarTree.random(modules.names(), rng))) for _ in range(8)
    ]

    checks = [model.evaluate(t) for t in tables]
    assert checks == [legacy(t) for t in tables], "unified model diverged from legacy"

    def rate(evaluate) -> float:
        best = 0.0
        for _ in range(repeats):
            t0 = time.perf_counter()
            for i in range(evals):
                evaluate(tables[i & 7])
            best = max(best, evals / (time.perf_counter() - t0))
        return best

    unified = rate(model.evaluate)
    inlined = rate(legacy)
    return {
        "modules": n,
        "nets": len(nets),
        "unified_evals_per_sec": round(unified, 1),
        "inlined_evals_per_sec": round(inlined, 1),
        "overhead_pct": round(100.0 * (inlined / unified - 1.0), 1),
        "results_identical": True,
    }


def measure(n: int, config: BStarPlacerConfig, repeats: int = 3) -> dict:
    """Best-of-``repeats`` steps/sec for all three evaluation tiers."""
    modules, nets = problem(n)
    kernel = BStarKernel(modules, nets, (), config)
    reference = _legacy_object_cost(modules, nets, config)

    def object_cost(state):
        return reference(pack(state.tree, modules, state.orientations, state.variants))

    def kernel_cost(state):
        return kernel.cost(state.tree, state.orientations, state.variants)

    moves = BStarMoveSet(modules)
    schedule = GeometricSchedule(
        t_initial=config.t_initial,
        t_final=config.t_final,
        alpha=config.alpha,
        steps_per_epoch=config.steps_per_epoch,
    )

    def run_functional(cost_fn) -> tuple[float, float]:
        rng = random.Random(config.seed)
        annealer = Annealer(cost_fn, moves, schedule, rng)
        initial = moves.initial_state(rng)
        t0 = time.perf_counter()
        outcome = annealer.run(initial)
        elapsed = time.perf_counter() - t0
        return outcome.stats.steps / elapsed, outcome.best_cost

    def run_engine(engine_cls) -> tuple[float, float]:
        rng = random.Random(config.seed)
        engine = engine_cls(modules, nets, (), config)
        engine.reset(engine.initial_state(rng))
        annealer = IncrementalAnnealer(engine, schedule, rng)
        t0 = time.perf_counter()
        outcome = annealer.run()
        elapsed = time.perf_counter() - t0
        return outcome.stats.steps / elapsed, outcome.best_cost

    object_sps = kernel_sps = incremental_sps = 0.0
    object_cost_best = kernel_cost_best = incremental_best = twin_best = None
    for _ in range(repeats):
        sps, object_cost_best = run_functional(object_cost)
        object_sps = max(object_sps, sps)
        sps, kernel_cost_best = run_functional(kernel_cost)
        kernel_sps = max(kernel_sps, sps)
        sps, incremental_best = run_engine(IncrementalBStarEngine)
        incremental_sps = max(incremental_sps, sps)
    # one full-repack replay of the incremental walk: same draws, full
    # evaluation — locks "faster, not different"
    _, twin_best = run_engine(FullRepackBStarEngine)

    assert object_cost_best == kernel_cost_best, (
        f"kernel diverged from object path: {object_cost_best} vs {kernel_cost_best}"
    )
    assert incremental_best == twin_best, (
        f"incremental diverged from full repack: {incremental_best} vs {twin_best}"
    )
    return {
        "modules": n,
        "nets": len(nets),
        "object_steps_per_sec": round(object_sps, 1),
        "kernel_steps_per_sec": round(kernel_sps, 1),
        "incremental_steps_per_sec": round(incremental_sps, 1),
        "speedup": round(kernel_sps / object_sps, 2),
        "incremental_speedup": round(incremental_sps / kernel_sps, 2),
        "best_cost_identical": True,
    }


def load_trajectory(path: Path = JSON_PATH) -> dict:
    """Load the tracked benchmark file, migrating the PR-1 layout
    (single flat entry) into the append-only ``trajectory`` list."""
    if not path.exists():
        return {"benchmark": "perf_kernel_steps_per_sec", "trajectory": []}
    data = json.loads(path.read_text())
    if "trajectory" not in data:
        legacy = {
            "mode": data.get("mode", "full"),
            "python": data.get("python"),
            "runs": data.get("runs", []),
        }
        data = {
            "benchmark": data.get("benchmark", "perf_kernel_steps_per_sec"),
            "trajectory": [legacy],
        }
    return data


def append_entry(entry: dict, path: Path = JSON_PATH) -> None:
    """Append one trajectory entry (never overwrites history)."""
    data = load_trajectory(path)
    data["trajectory"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")


def check_regression(
    entry: dict, trajectory: list[dict], threshold: float = REGRESSION_THRESHOLD
) -> list[str]:
    """Compare a fresh entry against the last comparable baseline.

    Returns one message per metric that regressed by more than
    ``threshold`` (fractional steps/s drop) relative to the most recent
    earlier entry of the same mode and module count.
    """
    problems: list[str] = []
    for run in entry.get("runs", []):
        baseline_run = None
        for old in reversed(trajectory):
            if old.get("mode") != entry.get("mode"):
                continue
            for old_run in old.get("runs", []):
                if old_run.get("modules") == run.get("modules"):
                    baseline_run = old_run
                    break
            if baseline_run is not None:
                break
        if baseline_run is None:
            continue
        for metric in (
            "kernel_steps_per_sec",
            "incremental_steps_per_sec",
            "vector_steps_per_sec",
        ):
            old_v = baseline_run.get(metric)
            new_v = run.get(metric)
            if not old_v or not new_v:
                continue
            if new_v < old_v * (1.0 - threshold):
                problems.append(
                    f"{metric} at {run['modules']} modules regressed "
                    f"{old_v:,.0f} -> {new_v:,.0f} steps/s "
                    f"({100.0 * (1 - new_v / old_v):.0f}% > {100.0 * threshold:.0f}% allowed)"
                )
    return problems


def record_trajectory_entry(
    mode: str,
    payload: dict,
    *,
    write: bool,
    gate: bool = False,
    path: Path = JSON_PATH,
) -> dict:
    """Stamp and (optionally) append one trajectory entry.

    The single recording path shared by every ``benchmarks/bench_*.py``:
    builds the common provenance header (mode, python version,
    wall-clock timestamp, active telemetry mode) once, then merges the
    benchmark-specific ``payload`` on top.

    When ``gate`` is set the entry is diffed against the trajectory with
    :func:`check_regression` first.  The regression diff only means
    something against entries recorded on the same tracked machine,
    i.e. when the run participates in the trajectory: a read-only run
    (CI smoke on arbitrary hardware) is never gated on it.  A regressed
    entry is reported but NOT appended — otherwise it would become the
    next run's baseline and the gate would ratchet itself away.

    Returns ``{"entry", "appended", "regressions"}``.
    """
    from repro.telemetry import active_mode

    entry = {
        "mode": mode,
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "telemetry": active_mode(),
        **payload,
    }
    regressions: list[str] = []
    appended = False
    if write:
        if gate:
            regressions = check_regression(entry, load_trajectory(path)["trajectory"])
        if not regressions:
            append_entry(entry, path)
            appended = True
    return {"entry": entry, "appended": appended, "regressions": regressions}


def run(fast: bool = False, write: bool = False) -> dict:
    """Measure all sizes; optionally append to the trajectory file."""
    if fast:
        # bounded steps for CI / the smoke runner: a shorter schedule,
        # one repeat — finishes in seconds but still exercises all three
        # tiers and both identity asserts; 100 modules stays in so the
        # incremental tier is measured where its advantage shows
        config = BStarPlacerConfig(seed=0, alpha=0.85, t_final=1e-3)
        sizes, repeats, evals = (30, 100), 1, 1000
    else:
        config = BStarPlacerConfig(seed=0)
        sizes, repeats, evals = (50, 100), 3, 4000

    recorded = record_trajectory_entry(
        "fast" if fast else "full",
        {
            "runs": [measure(n, config, repeats) for n in sizes],
            "cost_eval": [
                measure_cost_eval(n, config, evals=evals, repeats=repeats)
                for n in sizes
            ],
        },
        write=write,
        gate=True,
    )
    entry = recorded["entry"]
    regressions = recorded["regressions"]
    appended = recorded["appended"]

    header = (
        f"{'modules':>8} {'object/s':>10} {'kernel/s':>10} {'incr/s':>10} "
        f"{'kernel x':>9} {'incr x':>7}"
    )
    lines = [header]
    for row in entry["runs"]:
        lines.append(
            f"{row['modules']:>8} {row['object_steps_per_sec']:>10,.0f} "
            f"{row['kernel_steps_per_sec']:>10,.0f} "
            f"{row['incremental_steps_per_sec']:>10,.0f} "
            f"{row['speedup']:>8.2f}x {row['incremental_speedup']:>6.2f}x"
        )
    lines.append(
        f"{'modules':>8} {'unified/s':>11} {'inlined/s':>11} {'overhead':>9}"
    )
    for row in entry["cost_eval"]:
        lines.append(
            f"{row['modules']:>8} {row['unified_evals_per_sec']:>11,.0f} "
            f"{row['inlined_evals_per_sec']:>11,.0f} "
            f"{row['overhead_pct']:>8.1f}%"
        )
    return {
        "benchmark": "perf_kernel_steps_per_sec",
        "mode": entry["mode"],
        "python": entry["python"],
        "runs": entry["runs"],
        "cost_eval": entry["cost_eval"],
        "entry": entry,
        "regressions": regressions,
        "appended": appended,
        "table": "\n".join(lines),
    }


def test_perf_kernel_report(emit, benchmark):
    """Smoke-tier run: all paths agree and both fast tiers are faster."""
    results = benchmark.pedantic(lambda: run(fast=True), rounds=1, iterations=1)
    emit("perf_kernel", results["table"])
    for row in results["cost_eval"]:
        # the unified model must track the hand-inlined legacy formula:
        # identical floats always; dispatch overhead bounded loosely
        # here (single-repeat CI timings are noisy — the tracked 5%
        # budget is enforced on the trajectory file's full-mode entries)
        assert row["results_identical"]
        assert row["overhead_pct"] < 60.0
    for row in results["runs"]:
        assert row["best_cost_identical"]
        # full-run bars are TARGET_SPEEDUP / INCREMENTAL_TARGET; leave
        # headroom for the noisier bounded-step smoke configuration
        assert row["speedup"] >= 2.0
        if row["modules"] >= 100:
            # the dirty-suffix advantage needs enough modules to show
            # (tiny designs are dominated by fixed per-step overhead);
            # the floor is deliberately loose — single-repeat bounded
            # runs are noisy — and guards only against the incremental
            # tier falling *behind* the full-repack kernel
            assert row["incremental_speedup"] >= 1.05


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small module counts and short anneals (seconds, for CI)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report only; do not append to BENCH_perf_kernel.json",
    )
    args = parser.parse_args(argv)
    outcome = run(fast=args.quick, write=not args.no_write)
    print(outcome["table"])
    if outcome["appended"]:
        print(f"\nappended trajectory entry: {JSON_PATH}")
    for problem_msg in outcome["regressions"]:
        print(f"REGRESSION (entry not appended): {problem_msg}")
    if not args.quick:
        at_50 = next(r for r in outcome["runs"] if r["modules"] == 50)
        status = "MET" if at_50["speedup"] >= TARGET_SPEEDUP else "MISSED"
        print(
            f"kernel target >={TARGET_SPEEDUP:.0f}x at 50 modules: "
            f"{status} ({at_50['speedup']:.2f}x)"
        )
        at_100 = next(r for r in outcome["runs"] if r["modules"] == 100)
        status = (
            "MET" if at_100["incremental_speedup"] >= INCREMENTAL_TARGET else "MISSED"
        )
        print(
            f"incremental target >={INCREMENTAL_TARGET:.0f}x at 100 modules: "
            f"{status} ({at_100['incremental_speedup']:.2f}x)"
        )
    return 1 if outcome["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
