"""Benchmark harness helpers.

Every paper table/figure has one ``bench_*.py`` file.  Each file both
*benchmarks* the relevant kernels (via pytest-benchmark) and *emits* the
regenerated table/figure as text: printed to the captured output and
written to ``benchmarks/out/<name>.txt`` so the artifacts survive the
run.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def emit():
    """Write a regenerated artifact to benchmarks/out/ and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} (saved to {path}) =====")
        print(text)

    return _emit
