"""One-command benchmark runner (smoke mode by default).

``pytest benchmarks`` does not collect ``bench_*.py`` files (they don't
match the default test-file pattern), so regressions in bench scripts
used to go unnoticed until someone ran a file by hand.  This runner
enumerates every ``bench_*.py`` and executes them through pytest:

* default (smoke): ``--benchmark-disable`` — every benchmarked body
  runs exactly once with bounded steps, so the whole suite finishes in
  a couple of minutes and import/runtime breakage is caught;
* ``--full``: pytest-benchmark timing enabled (slow, for real numbers).

After the suites pass, two regression guards run (skip both with
``--no-guard``):

* the **perf guard** runs the quick perf-kernel, vector-tier and
  telemetry-overhead benchmarks, appends trajectory entries to
  ``BENCH_perf_kernel.json`` (append, never overwrite), and exits
  non-zero if steps/s dropped more than 20% against the most recent
  comparable entry of the same mode (the vector run also asserts the
  numpy path matches its scalar oracle byte for byte);
* the **sweep guard** runs the quick-tier quality sweep and diffs it
  against the committed ``benchmarks/quality_matrix.json`` (see
  ``docs/benchmarks.md``), exiting non-zero on any quality regression.

Both guards share the exit-code contract: 3 means regression.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # smoke + guard
    PYTHONPATH=src python benchmarks/run_all.py -k packers # one suite
    PYTHONPATH=src python benchmarks/run_all.py --full     # timed
    PYTHONPATH=src python benchmarks/run_all.py --no-guard # suites only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent


def perf_guard() -> int:
    """Quick perf-kernel + vector-tier + telemetry-overhead runs,
    trajectory appends, and the >20% steps/s regression gate (per mode)."""
    sys.path.insert(0, str(BENCH_DIR))
    import bench_perf_kernel
    import bench_telemetry
    import bench_vector

    failed = False
    for module in (bench_perf_kernel, bench_vector, bench_telemetry):
        outcome = module.run(fast=True, write=True)
        print(outcome["table"])
        if outcome["appended"]:
            print(f"trajectory entry appended: {bench_perf_kernel.JSON_PATH}")
        if outcome["regressions"]:
            # the regressed entry is deliberately NOT appended: the last
            # good numbers stay the baseline until the regression is fixed
            for problem in outcome["regressions"]:
                print(f"REGRESSION (entry not appended): {problem}", file=sys.stderr)
            failed = True
    if failed:
        return 3
    print("perf guard: no steps/s regression > "
          f"{100 * bench_perf_kernel.REGRESSION_THRESHOLD:.0f}%")
    return 0


def sweep_guard() -> int:
    """Quick-tier quality sweep diffed against the committed baseline.

    Quality fields are deterministic for fixed seeds, so unlike the
    steps/s guard this gate is hardware-independent.  Shares the
    exit-code contract: 3 on regression.
    """
    sys.path.insert(0, str(BENCH_DIR))
    import sweep

    return sweep.run_and_gate(tier="quick")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="enable pytest-benchmark timing (slow); default is a one-pass smoke run",
    )
    parser.add_argument("-k", default=None, help="pytest -k expression to select suites")
    parser.add_argument(
        "--no-guard",
        action="store_true",
        help="skip the perf-kernel and quality-sweep regression guards "
        "(and their trajectory appends)",
    )
    args = parser.parse_args(argv)

    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if not files:
        print("no bench_*.py files found", file=sys.stderr)
        return 2
    pytest_args = [str(f) for f in files] + ["-q"]
    if not args.full:
        pytest_args.append("--benchmark-disable")
    if args.k:
        pytest_args += ["-k", args.k]
    code = pytest.main(pytest_args)
    if code:
        return int(code)
    if args.no_guard:
        return 0
    code = perf_guard()
    if code:
        return code
    return sweep_guard()


if __name__ == "__main__":
    raise SystemExit(main())
