"""One-command benchmark runner (smoke mode by default).

``pytest benchmarks`` does not collect ``bench_*.py`` files (they don't
match the default test-file pattern), so regressions in bench scripts
used to go unnoticed until someone ran a file by hand.  This runner
enumerates every ``bench_*.py`` and executes them through pytest:

* default (smoke): ``--benchmark-disable`` — every benchmarked body
  runs exactly once with bounded steps, so the whole suite finishes in
  a couple of minutes and import/runtime breakage is caught;
* ``--full``: pytest-benchmark timing enabled (slow, for real numbers).

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # smoke
    PYTHONPATH=src python benchmarks/run_all.py -k packers # one suite
    PYTHONPATH=src python benchmarks/run_all.py --full     # timed
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="enable pytest-benchmark timing (slow); default is a one-pass smoke run",
    )
    parser.add_argument("-k", default=None, help="pytest -k expression to select suites")
    args = parser.parse_args(argv)

    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if not files:
        print("no bench_*.py files found", file=sys.stderr)
        return 2
    pytest_args = [str(f) for f in files] + ["-q"]
    if not args.full:
        pytest_args.append("--benchmark-disable")
    if args.k:
        pytest_args += ["-k", args.k]
    return pytest.main(pytest_args)


if __name__ == "__main__":
    raise SystemExit(main())
